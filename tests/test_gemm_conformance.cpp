// Differential conformance harness of the packed GEMM micro-kernel
// variants (gemm/kernels.hpp): every dispatchable variant (scalar
// baseline, portable lane model, AVX2 when the machine has it) must be
// *bit-identical* to the scalar reference oracles gemm_lowp_i32 and
// gemm_lowp_i32_shift4 — on randomized shapes, on skinny-K/skinny-N
// shapes, on saturation-boundary inputs, at zero-point extremes, on the
// GEMV fast path, and under forced thread sharding (the panel-chunking
// path the TSan preset audits).
//
// This suite is the contract that lets future kernel work (new ISA
// variants, multi-engine scale-out, new topologies) land without parity
// regressions: a vectorized quantized kernel that drifts by one ulp of
// rounding fails here before it ever reaches a network test.
//
// Rep count scales with TINCY_CONFORMANCE_REPS (default 40); the
// tier2-conformance ctest entry raises it and the sanitizer presets
// (ASan/UBSan/TSan) run the same binary unchanged.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "gemm/gemm_lowp.hpp"
#include "gemm/gemm_packed.hpp"
#include "gemm/kernels.hpp"

namespace tincy::gemm {
namespace {

int conformance_reps() {
  if (const char* env = std::getenv("TINCY_CONFORMANCE_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 40;
}

/// Saturation-boundary-biased codes: half uniform, half drawn from the
/// values that sit on u8/i16 wrap and saturation edges once centered
/// (0, 255 and the immediate neighbours of the zero points in use).
std::vector<uint8_t> edge_biased_codes(Rng& rng, int64_t n) {
  static constexpr uint8_t kEdges[] = {0, 1, 127, 128, 129, 254, 255};
  std::vector<uint8_t> v(n);
  for (auto& x : v)
    x = rng.uniform_int(0, 1) == 0
            ? static_cast<uint8_t>(rng.uniform_int(0, 255))
            : kEdges[rng.uniform_int(0, 6)];
  return v;
}

/// Zero-point pairs covering the extremes: full-range corners (0/255),
/// the symmetric midpoint, and the asymmetric pairs the real layers use.
constexpr std::pair<int32_t, int32_t> kZeroPoints[] = {
    {0, 0}, {255, 255}, {0, 255}, {255, 0}, {128, 128}, {7, 131}, {1, 254}};

struct Shape {
  int64_t M, N, K;
};

/// Runs one (shape, zero-point) case through every dispatchable kernel
/// variant on both accumulator paths and asserts bit-identity with the
/// scalar oracles. `opts_base` lets callers force sharding.
void expect_all_variants_conform(const Shape& s, int32_t za, int32_t zb,
                                 const std::vector<uint8_t>& a,
                                 const std::vector<uint8_t>& b,
                                 const GemmOptions& opts_base = [] {
                                   GemmOptions o;
                                   o.allow_threads = false;
                                   return o;
                                 }()) {
  std::vector<int32_t> oracle_i32(s.M * s.N), oracle_s4(s.M * s.N);
  gemm_lowp_i32(s.M, s.N, s.K, a.data(), za, b.data(), zb, oracle_i32.data());
  gemm_lowp_i32_shift4(s.M, s.N, s.K, a.data(), za, b.data(), zb,
                       oracle_s4.data());
  std::vector<int32_t> got(s.M * s.N);
  for (Kernel k : dispatchable_kernels()) {
    GemmOptions opts = opts_base;
    opts.kernel = k;

    opts.acc = Accumulator::kI32;
    std::fill(got.begin(), got.end(), -1);
    gemm_lowp_packed(s.M, s.N, s.K, a.data(), za, b.data(), zb, got.data(),
                     opts);
    ASSERT_EQ(oracle_i32, got)
        << "i32 kernel=" << kernel_name(k) << " M=" << s.M << " N=" << s.N
        << " K=" << s.K << " za=" << za << " zb=" << zb;

    opts.acc = Accumulator::kI16Shift4;
    std::fill(got.begin(), got.end(), -1);
    gemm_lowp_packed(s.M, s.N, s.K, a.data(), za, b.data(), zb, got.data(),
                     opts);
    ASSERT_EQ(oracle_s4, got)
        << "shift4 kernel=" << kernel_name(k) << " M=" << s.M << " N=" << s.N
        << " K=" << s.K << " za=" << za << " zb=" << zb;
  }
}

// --- Randomized differential sweep -------------------------------------

TEST(GemmConformance, RandomizedShapeSweep) {
  Rng rng(2018);
  const int reps = conformance_reps();
  for (int rep = 0; rep < reps; ++rep) {
    Shape s{rng.uniform_int(1, 33), rng.uniform_int(1, 49),
            rng.uniform_int(1, 96)};
    // Every third rep pins a skinny dimension: the tail-handling and
    // padded-lane paths are where vector kernels historically drift.
    if (rep % 3 == 1) s.K = rng.uniform_int(1, 3);
    if (rep % 3 == 2) s.N = rng.uniform_int(1, 3);
    const auto [za, zb] = kZeroPoints[rep % std::size(kZeroPoints)];
    const auto a = edge_biased_codes(rng, s.M * s.K);
    const auto b = edge_biased_codes(rng, s.K * s.N);
    expect_all_variants_conform(s, za, zb, a, b);
    if (HasFatalFailure()) return;
  }
}

TEST(GemmConformance, SkinnyAndAwkwardShapes) {
  // The fixed shapes every kernel change must survive: single tiles,
  // nothing-divides-anything, GEMV (N=1), K=1, and the layer-0-like
  // skinny-K wide-N shape that caught the threaded gate miss.
  const Shape shapes[] = {{1, 1, 1},  {4, 16, 8},   {7, 13, 33},
                          {1, 50, 9}, {5, 1, 64},   {3, 17, 1},
                          {2, 3, 2},  {16, 1000, 27}, {33, 31, 130}};
  Rng rng(2019);
  for (const Shape& s : shapes) {
    const auto a = edge_biased_codes(rng, s.M * s.K);
    const auto b = edge_biased_codes(rng, s.K * s.N);
    expect_all_variants_conform(s, 7, 131, a, b);
    if (HasFatalFailure()) return;
  }
}

TEST(GemmConformance, SaturationBoundaryInputs) {
  // All-corner operands at zero-point extremes: centered products hit
  // ±255·255, the shift4 path wraps its i16 product cast and rides the
  // saturating accumulator rails. Conformance must hold bit for bit even
  // in the wrapped/saturated regime (the oracles wrap identically).
  const Shape s{9, 21, 48};
  for (const auto& [za, zb] : kZeroPoints) {
    Rng rng(3000 + za * 7 + zb);
    std::vector<uint8_t> a(s.M * s.K), b(s.K * s.N);
    for (auto& x : a) x = rng.uniform_int(0, 1) ? 255 : 0;
    for (auto& x : b) x = rng.uniform_int(0, 1) ? 255 : 0;
    expect_all_variants_conform(s, za, zb, a, b);
    if (HasFatalFailure()) return;
  }
}

TEST(GemmConformance, ThreadedPanelChunkingConforms) {
  // Forced sharding over a private pool: the panel-chunked (and GEMV
  // row-block) parallel paths must agree with the oracles for every
  // variant. This is the TSan-preset target of the tier2-conformance
  // label — parallel shards writing disjoint C regions.
  core::ThreadPool pool(4);
  GemmOptions forced;
  forced.pool = &pool;
  forced.min_ops_per_shard = 1;
  forced.min_ops_to_thread = 1;
  Rng rng(2020);
  const Shape shapes[] = {{24, 170, 40}, {16, 1000, 27}, {21, 1, 128}};
  for (const Shape& s : shapes) {
    const auto a = edge_biased_codes(rng, s.M * s.K);
    const auto b = edge_biased_codes(rng, s.K * s.N);
    expect_all_variants_conform(s, 128, 128, a, b, forced);
    if (HasFatalFailure()) return;
  }
}

TEST(GemmConformance, GemvFastPathTailHandling) {
  // N == 1 takes the flat-dot fast path; K·kMr lengths that are not
  // multiples of the 16-lane step exercise every variant's scalar tail.
  Rng rng(2021);
  for (int64_t K : {1, 2, 3, 4, 5, 7, 16, 33, 100}) {
    const Shape s{13, 1, K};
    const auto a = edge_biased_codes(rng, s.M * s.K);
    const auto b = edge_biased_codes(rng, s.K * s.N);
    expect_all_variants_conform(s, 254, 3, a, b);
    if (HasFatalFailure()) return;
  }
}

// --- Dispatch contract --------------------------------------------------

TEST(KernelDispatch, ParseAndNames) {
  EXPECT_EQ(parse_kernel_name("scalar"), Kernel::kScalar);
  EXPECT_EQ(parse_kernel_name("lanes"), Kernel::kLanes);
  EXPECT_EQ(parse_kernel_name("avx2"), Kernel::kAvx2);
  EXPECT_EQ(parse_kernel_name("auto"), Kernel::kAuto);
  EXPECT_EQ(parse_kernel_name("bogus"), Kernel::kAuto);
  EXPECT_EQ(parse_kernel_name(nullptr), Kernel::kAuto);
  for (Kernel k : dispatchable_kernels())
    EXPECT_EQ(parse_kernel_name(kernel_name(k)), k);
}

TEST(KernelDispatch, AutoSelectsWidestSupported) {
  unsetenv("TINCY_GEMM_KERNEL");
  const Kernel widest = widest_supported_kernel();
  EXPECT_TRUE(kernel_supported(widest));
  EXPECT_EQ(resolve_kernel(Kernel::kAuto), widest);
  // The widest variant is a SIMD one — kAuto must never pick the scalar
  // baseline on its own.
  EXPECT_NE(widest, Kernel::kScalar);
  // Explicit requests resolve to themselves when supported.
  EXPECT_EQ(resolve_kernel(Kernel::kScalar), Kernel::kScalar);
  EXPECT_EQ(resolve_kernel(Kernel::kLanes), Kernel::kLanes);
  // An unsupported explicit request falls back to the widest variant.
  if (!kernel_supported(Kernel::kAvx2)) {
    EXPECT_EQ(resolve_kernel(Kernel::kAvx2), widest);
  }
}

TEST(KernelDispatch, EnvOverrideSteersAutoAndEndToEnd) {
  const Shape s{6, 40, 24};
  Rng rng(2022);
  const auto a = edge_biased_codes(rng, s.M * s.K);
  const auto b = edge_biased_codes(rng, s.K * s.N);
  std::vector<int32_t> oracle(s.M * s.N), got(s.M * s.N);
  gemm_lowp_i32(s.M, s.N, s.K, a.data(), 7, b.data(), 131, oracle.data());
  for (Kernel k : dispatchable_kernels()) {
    setenv("TINCY_GEMM_KERNEL", kernel_name(k), 1);
    EXPECT_EQ(resolve_kernel(Kernel::kAuto), k);
    GemmOptions opts;  // kernel = kAuto: must route through the override
    opts.allow_threads = false;
    std::fill(got.begin(), got.end(), -1);
    gemm_lowp_packed(s.M, s.N, s.K, a.data(), 7, b.data(), 131, got.data(),
                     opts);
    EXPECT_EQ(oracle, got) << "env override " << kernel_name(k);
  }
  // An unsupported or garbage override falls back to auto selection.
  setenv("TINCY_GEMM_KERNEL", "bogus", 1);
  EXPECT_EQ(resolve_kernel(Kernel::kAuto), widest_supported_kernel());
  unsetenv("TINCY_GEMM_KERNEL");
}

TEST(KernelDispatch, DispatchableListIsCoherent) {
  const auto variants = dispatchable_kernels();
  ASSERT_GE(variants.size(), 2u);  // scalar + lanes at minimum
  EXPECT_EQ(variants.front(), Kernel::kScalar);
  for (Kernel k : variants) EXPECT_TRUE(kernel_supported(k));
  // kAuto is a request, not a concrete variant.
  EXPECT_FALSE(kernel_supported(Kernel::kAuto));
}

}  // namespace
}  // namespace tincy::gemm
