// Tracing + flight-recorder + windowed-metrics suite (src/telemetry/trace,
// the windowed half of src/telemetry/metrics, and the StreamServer's
// observability surface). Like test_serve, this is a TSan target: the
// concurrent-emit test races writers against a snapshotting reader.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/errors.hpp"
#include "serve/server.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "video/frame.hpp"

// ServeStage carries optional batched fields (batch_work, engine_layer)
// with safe defaults; the three-field literal stays the canonical
// spelling for plain CPU stages.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace tincy::telemetry {
namespace {

TEST(TraceCollector, DisabledCollectorRetainsNothing) {
  TraceCollector tc(64);
  tc.instant("noop", 0, 0);
  {
    TraceSpan span(&tc, "noop-span", 0, 0);
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tc.snapshot().empty());
}

TEST(TraceCollector, EmitSnapshotRoundTrip) {
  TraceCollector tc(64);
  tc.set_enabled(true);
  tc.async_begin("frame", 3, 7);
  tc.instant("gang", 3, 7, "\"role\":\"leader\",\"grant\":5,\"batch\":2");
  tc.emit(TracePhase::kComplete, "stage:engine", 3, 7, "\"batch\":2",
          /*dur_ms=*/1.5, /*ts_ms=*/2.0);
  tc.async_end("frame", 3, 7, "\"outcome\":\"delivered\"");

  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // snapshot() sorts by timestamp; the backdated complete span (ts 2.0)
  // may land anywhere, so look events up by name.
  const TraceEvent* gang = nullptr;
  const TraceEvent* stage = nullptr;
  for (const auto& e : events) {
    if (e.name_view() == "gang") gang = &e;
    if (e.name_view() == "stage:engine") stage = &e;
  }
  ASSERT_NE(gang, nullptr);
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(gang->session, 3);
  EXPECT_EQ(gang->frame, 7);
  EXPECT_EQ(trace_arg_int(*gang, "grant"), 5);
  EXPECT_EQ(trace_arg_int(*gang, "batch"), 2);
  EXPECT_EQ(trace_arg_str(*gang, "role"), "leader");
  EXPECT_EQ(stage->phase, TracePhase::kComplete);
  EXPECT_DOUBLE_EQ(stage->ts_ms, 2.0);
  EXPECT_DOUBLE_EQ(stage->dur_ms, 1.5);
}

TEST(TraceCollector, RingWrapsKeepingTheNewestEvents) {
  constexpr int64_t kCapacity = 16;
  TraceCollector tc(kCapacity);
  tc.set_enabled(true);
  for (int64_t i = 0; i < 100; ++i) tc.instant("tick", 0, i);
  const auto events = tc.snapshot();
  // Once wrapped, the reader conservatively discards the slot the writer
  // would claim next, so a full ring yields kCapacity - 1 events — the
  // newest ones, oldest first.
  constexpr int64_t kKept = kCapacity - 1;
  ASSERT_EQ(events.size(), static_cast<size_t>(kKept));
  for (int64_t i = 0; i < kKept; ++i)
    EXPECT_EQ(events[static_cast<size_t>(i)].frame, 100 - kKept + i);
}

TEST(TraceCollector, ResetDiscardsRetainedEvents) {
  TraceCollector tc(32);
  tc.set_enabled(true);
  tc.instant("before", 0, 0);
  tc.reset();
  EXPECT_TRUE(tc.snapshot().empty());
  tc.instant("after", 0, 1);
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name_view(), "after");
}

TEST(TraceCollector, SessionTailFiltersAndBounds) {
  TraceCollector tc(256);
  tc.set_enabled(true);
  for (int64_t i = 0; i < 20; ++i) {
    tc.instant("a", 1, i);
    tc.instant("b", 2, i);
  }
  const auto tail = tc.session_tail(1, 5);
  ASSERT_EQ(tail.size(), 5u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].session, 1);
    EXPECT_EQ(tail[i].frame, 15 + static_cast<int64_t>(i));
  }
}

// The TSan race target: writers hammer their per-thread rings while a
// reader snapshots concurrently. Every event that comes out must be
// internally consistent (no torn name/args/id combinations).
TEST(TraceCollector, ConcurrentEmitAndSnapshotStaysConsistent) {
  constexpr int kWriters = 4;
  constexpr int64_t kEmitsPerWriter = 20000;
  TraceCollector tc(128);
  tc.set_enabled(true);

  std::vector<std::string> names;
  for (int w = 0; w < kWriters; ++w) names.push_back("w" + std::to_string(w));

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& e : tc.snapshot()) {
        // Writer w emits (session w, frame i, args "v":w*kEmits+i); a
        // torn slot would break the relation.
        const int64_t w = e.session;
        ASSERT_GE(w, 0);
        ASSERT_LT(w, kWriters);
        ASSERT_EQ(e.name_view(), names[static_cast<size_t>(w)]);
        ASSERT_EQ(trace_arg_int(e, "v"), w * kEmitsPerWriter + e.frame);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string& name = names[static_cast<size_t>(w)];
      for (int64_t i = 0; i < kEmitsPerWriter; ++i) {
        char args[32];
        std::snprintf(args, sizeof args, "\"v\":%lld",
                      static_cast<long long>(w * kEmitsPerWriter + i));
        tc.instant(name, w, i, args);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiescent read: every writer's retained window is a contiguous,
  // newest suffix of what it emitted.
  std::vector<int64_t> last_seen(kWriters, -1);
  std::vector<int64_t> count(kWriters, 0);
  for (const auto& e : tc.snapshot()) {
    const auto w = static_cast<size_t>(e.session);
    EXPECT_GT(e.frame, last_seen[w]);
    last_seen[w] = e.frame;
    ++count[w];
  }
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(last_seen[w], kEmitsPerWriter - 1);
    EXPECT_LE(count[w], 128);
    EXPECT_GT(count[w], 0);
  }
}

TEST(TraceChromeExport, RoundTripsThroughParser) {
  TraceCollector tc(64);
  tc.set_enabled(true);
  tc.async_begin("frame", 1, 2);
  {
    TraceSpan span(&tc, "stage:pre", 1, 2);
    span.set_args("\"batch\":3");
  }
  tc.instant("quarantine", 1, -1);
  tc.async_end("frame", 1, 2, "\"outcome\":\"delivered\"");
  const auto events = tc.snapshot();

  const std::string json = to_chrome_trace(events);
  const auto parsed = parse_chrome_trace(json);
  ASSERT_EQ(parsed.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].phase, events[i].phase) << i;
    EXPECT_EQ(parsed[i].name_view(), events[i].name_view()) << i;
    EXPECT_EQ(parsed[i].session, events[i].session) << i;
    EXPECT_EQ(parsed[i].frame, events[i].frame) << i;
    EXPECT_EQ(parsed[i].tid, events[i].tid) << i;
    EXPECT_NEAR(parsed[i].ts_ms, events[i].ts_ms, 1e-5) << i;
    EXPECT_NEAR(parsed[i].dur_ms, events[i].dur_ms, 1e-5) << i;
  }
  const auto& span = parsed[1].name_view() == "stage:pre" ? parsed[1]
                                                          : parsed[0];
  EXPECT_EQ(trace_arg_int(span, "batch"), 3);
  const auto& end = parsed.back();
  EXPECT_EQ(trace_arg_str(end, "outcome"), "delivered");

  EXPECT_THROW(parse_chrome_trace("{\"traceEvents\":["), Error);
  EXPECT_THROW(parse_chrome_trace("not json"), Error);
}

TEST(TraceContext, NestedSpansInheritTheInstalledFrame) {
  TraceCollector tc(64);
  tc.set_enabled(true);
  {
    ScopedTraceContext ctx(4, 9);
    TraceSpan span(&tc, "net.layer.0.conv", current_trace_context());
  }
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].session, 4);
  EXPECT_EQ(events[0].frame, 9);
  // Context restored on scope exit.
  EXPECT_EQ(current_trace_context().session, -1);
  EXPECT_EQ(current_trace_context().frame, -1);
}

// --- Windowed metrics (scripted clock) ---

TEST(WindowedHistogram, OldSlicesDecayOutOfTheWindow) {
  WindowedHistogram h({std::chrono::milliseconds(1000), 10});
  // Keep all scripted instants safely after the construction epoch.
  const auto base = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(50);
  h.record_at(10.0, base);
  h.record_at(30.0, base + std::chrono::milliseconds(500));

  auto s = h.stats_at(base + std::chrono::milliseconds(500));
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
  EXPECT_DOUBLE_EQ(s.last, 30.0);

  // 1.1 s after the first sample it is outside the 1 s window; the
  // second survives.
  s = h.stats_at(base + std::chrono::milliseconds(1150));
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.min, 30.0);
  EXPECT_DOUBLE_EQ(s.sum, 30.0);

  // Far in the future everything has decayed.
  s = h.stats_at(base + std::chrono::milliseconds(5000));
  EXPECT_EQ(s.count, 0);
}

TEST(WindowedHistogram, SliceReuseClearsStaleContent) {
  WindowedHistogram h({std::chrono::milliseconds(1000), 10});
  const auto base = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(50);
  h.record_at(100.0, base);
  // Land in the same ring slot exactly one window later: the slice must
  // restart, not accumulate into the stale epoch.
  h.record_at(7.0, base + std::chrono::milliseconds(1000));
  const auto s = h.stats_at(base + std::chrono::milliseconds(1000));
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(WindowedHistogram, QuantilesComeFromLiveSlicesOnly) {
  WindowedHistogram h({std::chrono::milliseconds(1000), 10});
  const auto base = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(50);
  for (int i = 0; i < 100; ++i) h.record_at(1.0, base);
  for (int i = 0; i < 100; ++i)
    h.record_at(100.0, base + std::chrono::milliseconds(600));
  // Both populations live: the median sits between the clusters.
  auto s = h.stats_at(base + std::chrono::milliseconds(600));
  EXPECT_EQ(s.count, 200);
  // After the early cluster decays only the late one remains.
  s = h.stats_at(base + std::chrono::milliseconds(1300));
  EXPECT_EQ(s.count, 100);
  EXPECT_GT(s.p50, 50.0);
}

TEST(WindowedRate, TracksOnlyTheRecentWindow) {
  WindowedRate r({std::chrono::milliseconds(1000), 10});
  const auto base = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(50);
  EXPECT_DOUBLE_EQ(r.per_second_at(base), 0.0);
  for (int i = 0; i < 10; ++i) r.add_at(1, base);
  // All 10 events landed in one 100 ms slice.
  EXPECT_DOUBLE_EQ(r.per_second_at(base), 100.0);
  // Nine hundred ms later the window spans 1 s: 10 events/s.
  EXPECT_NEAR(r.per_second_at(base + std::chrono::milliseconds(900)), 10.0,
              1e-9);
  // Once the slice leaves the window the rate is zero again.
  EXPECT_DOUBLE_EQ(r.per_second_at(base + std::chrono::milliseconds(1500)),
                   0.0);
}

TEST(MetricsRegistry, WindowedMetricsAppearInSnapshots) {
  MetricsRegistry registry;
  auto& h = registry.windowed_histogram("lat.window");
  auto& r = registry.windowed_rate("fps.window");
  h.record(5.0);
  r.add(3);
  const auto snap = registry.snapshot();
  const auto* hs = snap.find_histogram("lat.window");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->stats.count, 1);
  ASSERT_NE(snap.find_gauge("fps.window"), nullptr);
  EXPECT_GT(snap.gauge_value("fps.window"), 0.0);
  // The export schema needs no extension for them.
  const auto reparsed = parse_snapshot(to_json(snap));
  ASSERT_NE(reparsed.find_histogram("lat.window"), nullptr);
  registry.reset("lat.");
  EXPECT_EQ(registry.snapshot().find_histogram("lat.window")->stats.count, 0);
}

// --- StreamServer integration: sanitization, queue depth, flight dumps ---

TEST(ServerObservability, SessionNamesAreSanitizedForMetrics) {
  telemetry::MetricsRegistry registry;
  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.metrics = &registry;
  serve::StreamServer server(opts);
  serve::SessionConfig sc;
  sc.name = "cam 1/\"front\"\\door";
  sc.stages = {{"s", [](video::Frame&) {}, false}};
  sc.deliver = [](video::Frame&&) {};
  const int64_t id = server.open_session(std::move(sc));
  server.start();
  ASSERT_EQ(server.submit(id, video::Frame{}), serve::ServeResult::kAccepted);
  server.drain();
  server.stop();

  const auto snap = registry.snapshot();
  const std::string base = "serve.session.cam_1__front__door.";
  EXPECT_EQ(snap.counter_value(base + "frames"), 1);
  ASSERT_NE(snap.find_gauge(base + "queue_depth"), nullptr);
  ASSERT_NE(snap.find_histogram(base + "latency_ms.window"), nullptr);
  ASSERT_NE(snap.find_gauge(base + "fps.window"), nullptr);
  // The sanitized label keeps the exported document parseable.
  const auto reparsed = parse_snapshot(to_json(snap));
  EXPECT_EQ(reparsed.counter_value(base + "frames"), 1);

  // Unboundedly long names are rejected outright.
  serve::SessionConfig too_long;
  too_long.name = std::string(101, 'x');
  too_long.stages = {{"s", [](video::Frame&) {}, false}};
  too_long.deliver = [](video::Frame&&) {};
  EXPECT_THROW(server.open_session(std::move(too_long)), Error);
}

TEST(ServerObservability, QueueDepthGaugeReflectsAdmissionDwell) {
  telemetry::MetricsRegistry registry;
  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.metrics = &registry;
  serve::StreamServer server(opts);
  serve::SessionConfig sc;
  sc.queue_capacity = 8;
  sc.stages = {{"slow",
                [](video::Frame&) {
                  std::this_thread::sleep_for(std::chrono::milliseconds(2));
                },
                false}};
  sc.deliver = [](video::Frame&&) {};
  const int64_t id = server.open_session(std::move(sc));
  server.start();
  for (int64_t i = 0; i < 8; ++i) {
    video::Frame f;
    f.sequence = i;
    ASSERT_EQ(server.submit(id, std::move(f)), serve::ServeResult::kAccepted);
  }
  server.drain();
  server.stop();
  // Frames queued behind a 2 ms stage accumulated real dwell, so the
  // Little's-law mean depth is strictly positive.
  const auto* g = registry.snapshot().find_gauge(
      "serve.session.s0.queue_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_GT(g->value, 0.0);
}

TEST(ServerObservability, PoisonedGangLeavesFlightDumpsForEveryMember) {
  const std::string dir =
      testing::TempDir() + "tincy_flight_" +
      std::to_string(std::chrono::steady_clock::now().time_since_epoch()
                         .count());
  TraceCollector collector(1024);
  collector.set_enabled(true);

  telemetry::MetricsRegistry registry;
  serve::ServerOptions opts;
  opts.num_workers = 4;
  opts.metrics = &registry;
  opts.trace = &collector;
  opts.flight_recorder_dir = dir;
  opts.flight_recorder_events = 64;
  opts.arbiter = {.max_batch = 2, .batch_linger_us = 20000};
  serve::StreamServer server(opts);
  for (int i = 0; i < 2; ++i) {
    serve::SessionConfig sc;
    serve::ServeStage stage;
    stage.name = "engine";
    stage.uses_engine = true;
    stage.engine_layer = 0;
    stage.batch_work = [](std::span<video::Frame* const> gang) {
      if (gang.size() > 1) throw std::runtime_error("gang fault");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    };
    sc.stages.push_back(std::move(stage));
    sc.deliver = [](video::Frame&&) {};
    sc.queue_capacity = 8;
    server.open_session(std::move(sc));
  }
  server.start();
  // The linger holds a lone engine claim open for its peer, so a gang —
  // and with it the poisoned pass — forms within a few rounds.
  for (int round = 0; round < 200 && !server.quarantined(0); ++round) {
    int64_t seq = round * 2;
    for (int s = 0; s < 2; ++s) {
      video::Frame a, b;
      a.sequence = seq;
      b.sequence = seq + 1;
      if (!server.quarantined(s)) {
        server.submit(s, std::move(a));
        server.submit(s, std::move(b));
      }
    }
    server.drain();
  }
  server.stop();
  ASSERT_TRUE(server.quarantined(0));
  ASSERT_TRUE(server.quarantined(1));

  // Every gang member must have produced its own post-mortem, naming the
  // session and the fault, holding only that session's events, and
  // including its seat in the fatal gang.
  for (int s = 0; s < 2; ++s) {
    const std::string path = dir + "/flight_s" + std::to_string(s) + ".json";
    std::ifstream file(path);
    ASSERT_TRUE(file.good()) << path;
    std::ostringstream buf;
    buf << file.rdbuf();
    const std::string body = buf.str();
    EXPECT_NE(body.find("\"schema\":\"tincy.flight.v1\""), std::string::npos);
    EXPECT_NE(body.find("\"sessionName\":\"s" + std::to_string(s) + "\""),
              std::string::npos);
    EXPECT_NE(body.find("\"fault\":\"gang fault\""), std::string::npos);
    const auto events = parse_chrome_trace(body);
    ASSERT_FALSE(events.empty());
    bool saw_gang = false, saw_quarantine = false;
    for (const auto& e : events) {
      EXPECT_EQ(e.session, s);
      if (e.name_view() == "gang") saw_gang = true;
      if (e.name_view() == "quarantine") saw_quarantine = true;
    }
    EXPECT_TRUE(saw_gang);
    EXPECT_TRUE(saw_quarantine);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace tincy::telemetry
