#include <gtest/gtest.h>

#include "nn/zoo.hpp"
#include "perf/ladder.hpp"
#include "perf/platform.hpp"
#include "perf/stage_times.hpp"

namespace tincy::perf {
namespace {

using nn::zoo::CpuProfile;
using nn::zoo::QuantMode;
using nn::zoo::TinyVariant;

std::unique_ptr<nn::Network> tiny() {
  return nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTiny, QuantMode::kFloat, 416, CpuProfile::kReference));
}

std::unique_ptr<nn::Network> tincy() {
  return nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kFloat, 416, CpuProfile::kReference));
}

TEST(StageTimes, TableThreeShape) {
  // The calibrated model must land near the paper's Table III rows.
  const ZynqPlatform p;
  const auto net = tiny();
  const StageTimes t = model_stage_times(*net, p, FirstLayerImpl::kGeneric,
                                         HiddenImpl::kGeneric);
  EXPECT_NEAR(t.acquisition_ms, 40.0, 1e-9);
  EXPECT_NEAR(t.input_layer_ms, 620.0, 80.0);
  EXPECT_NEAR(t.first_pool_ms, 140.0, 25.0);
  EXPECT_NEAR(t.hidden_layers_ms, 9160.0, 900.0);
  EXPECT_NEAR(t.output_layer_ms, 30.0, 25.0);
  EXPECT_NEAR(t.total_ms(), 10030.0, 1000.0);
  EXPECT_NEAR(t.fps(), 0.1, 0.02);
}

TEST(StageTimes, FabricHiddenAroundThirtyMs) {
  const ZynqPlatform p;
  const auto net = tiny();
  const double ms = fabric_hidden_ms(*net, p);
  // Paper: "reduces the processing time of all hidden layers together to
  // 30 ms" — a >300x speedup over the 9,160 ms CPU path.
  EXPECT_GT(ms, 10.0);
  EXPECT_LT(ms, 60.0);
  const StageTimes generic = model_stage_times(
      *net, p, FirstLayerImpl::kGeneric, HiddenImpl::kGeneric);
  EXPECT_GT(generic.hidden_layers_ms / ms, 150.0);
}

TEST(StageTimes, FirstLayerLadder) {
  const ZynqPlatform p;
  const auto net = tiny();
  const auto ms = [&](FirstLayerImpl impl) {
    return model_stage_times(*net, p, impl, HiddenImpl::kFabric)
        .input_layer_ms;
  };
  const double generic = ms(FirstLayerImpl::kGeneric);
  // §III-D progression: 620 → 280 → … → 160 → 140 → 120 ms.
  EXPECT_NEAR(ms(FirstLayerImpl::kLowpGemm), generic / 2.2, 1.0);
  EXPECT_NEAR(ms(FirstLayerImpl::kSpecF32), generic * 160.0 / 620.0, 1.0);
  EXPECT_GT(ms(FirstLayerImpl::kSpecAcc32), ms(FirstLayerImpl::kSpecAcc16));
}

TEST(StageTimes, AlgorithmicSimplificationLeanConv) {
  // Modification (d): stride-2 first conv needs ~35 ms instead of 120 ms
  // and eliminates the 140 ms first pool.
  const ZynqPlatform p;
  const auto net = tincy();
  const StageTimes t = model_stage_times(*net, p, FirstLayerImpl::kSpecAcc16,
                                         HiddenImpl::kFabric);
  EXPECT_NEAR(t.input_layer_ms, 35.0, 12.0);
  EXPECT_DOUBLE_EQ(t.first_pool_ms, 0.0);
}

TEST(Ladder, ReproducesPaperProgression) {
  const ZynqPlatform p;
  const auto ladder = optimization_ladder(p);
  ASSERT_EQ(ladder.size(), 9u);

  // Essentially monotone frame rate along the ladder. Steps 3 and 4 are
  // *alternative* first-layer attempts in the paper (gemmlowp 2.2x vs
  // fused float 2.1x), so a small dip between them is faithful.
  for (size_t i = 1; i < ladder.size(); ++i)
    EXPECT_GE(ladder[i].fps, ladder[i - 1].fps * 0.95) << ladder[i].name;

  EXPECT_NEAR(ladder[0].fps, 0.1, 0.02);       // generic: 0.1 fps
  EXPECT_NEAR(ladder[1].fps, 1.1, 0.4);        // fabric: "just above 1 fps"
  EXPECT_NEAR(ladder[6].fps, 2.5, 0.6);        // acc16: 400 ms → 2.5 fps
  EXPECT_NEAR(ladder[7].fps, 5.8, 1.5);        // Tincy: "more than 5 fps"
  EXPECT_NEAR(ladder[8].fps, 16.0, 3.0);       // pipelined: 16 fps
  EXPECT_NEAR(ladder[8].speedup_total, 160.0, 40.0);  // overall 160x
}

TEST(Ladder, NetElevenTimesSpeedupFromFabric) {
  const ZynqPlatform p;
  const auto ladder = optimization_ladder(p);
  // "the net effect reduces to a 11x speedup".
  EXPECT_NEAR(ladder[1].speedup_total, 11.0, 3.5);
}

TEST(Ladder, PipelineAlmostThreefold) {
  const ZynqPlatform p;
  const auto ladder = optimization_ladder(p);
  // "almost a threefold speedup" from pipelining.
  EXPECT_GT(ladder[8].speedup_previous, 2.0);
  EXPECT_LT(ladder[8].speedup_previous, 4.0);
}

TEST(PipelinedStages, AccountsForExclusivePl) {
  const ZynqPlatform p;
  const auto net = tincy();
  const StageTimes t = model_stage_times(*net, p, FirstLayerImpl::kSpecAcc16,
                                         HiddenImpl::kFabric);
  const auto stages = pipelined_stages(p, t);
  int pl_stages = 0;
  for (const auto& s : stages)
    if (!s.exclusive_resource.empty()) ++pl_stages;
  EXPECT_EQ(pl_stages, 1);
  // Fig. 5: four stages longer than the "network" portion; here the
  // network collapses into 3 stages (input, PL, output) + 4 = 7.
  EXPECT_EQ(stages.size(), 7u);
}

}  // namespace
}  // namespace tincy::perf
