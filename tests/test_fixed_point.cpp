#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/fixed_point.hpp"
#include "core/rng.hpp"

namespace tincy {
namespace {

TEST(RoundingRightShift, MatchesNeonVrshrSemantics) {
  // VRSHR adds the rounding constant 1 << (n-1) before the shift.
  EXPECT_EQ(rounding_right_shift<int32_t>(15, 4), 1);   // 15+8 = 23 >> 4
  EXPECT_EQ(rounding_right_shift<int32_t>(16, 4), 1);
  EXPECT_EQ(rounding_right_shift<int32_t>(24, 4), 2);   // ties round up
  EXPECT_EQ(rounding_right_shift<int32_t>(-24, 4), -1); // -24+8 = -16 >> 4
  EXPECT_EQ(rounding_right_shift<int32_t>(-25, 4), -2);
  EXPECT_EQ(rounding_right_shift<int32_t>(7, 0), 7);
}

TEST(RoundingRightShift, PropertyAgainstFloatReference) {
  Rng rng(3);
  for (int rep = 0; rep < 5000; ++rep) {
    const auto x = static_cast<int32_t>(rng.uniform_int(-1 << 20, 1 << 20));
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    // round-half-up toward +inf on the scaled value.
    const double expected = std::floor(static_cast<double>(x) / (1 << n) + 0.5);
    EXPECT_EQ(rounding_right_shift(x, n), static_cast<int32_t>(expected))
        << "x=" << x << " n=" << n;
  }
}

TEST(RoundingRightShift, Int16NoIntermediateOverflow) {
  // The acc16 kernel path: x near int16 limits must not wrap.
  EXPECT_EQ(rounding_right_shift<int16_t>(32767, 4), 2048);
  EXPECT_EQ(rounding_right_shift<int16_t>(-32768, 4), -2048);
}

TEST(SaturateCast, ClampsToTargetRange) {
  EXPECT_EQ(saturate_cast<int8_t>(1000), 127);
  EXPECT_EQ(saturate_cast<int8_t>(-1000), -128);
  EXPECT_EQ(saturate_cast<int8_t>(5), 5);
  EXPECT_EQ(saturate_cast<uint8_t>(-3), 0);
  EXPECT_EQ(saturate_cast<uint8_t>(300), 255);
  EXPECT_EQ(saturate_cast<int16_t>(40000), 32767);
  EXPECT_EQ(saturate_cast<int16_t>(-40000), -32768);
}

TEST(SaturatingAdd, Int16Semantics) {
  EXPECT_EQ(saturating_add<int16_t>(32000, 1000), 32767);
  EXPECT_EQ(saturating_add<int16_t>(-32000, -1000), -32768);
  EXPECT_EQ(saturating_add<int16_t>(100, 200), 300);
}

TEST(SaturatingRoundingDoublingHighMul, KnownValues) {
  // (a*b*2 + nudge) >> 31.
  EXPECT_EQ(saturating_rounding_doubling_high_mul(1 << 30, 1 << 30),
            1 << 29);
  EXPECT_EQ(saturating_rounding_doubling_high_mul(
                std::numeric_limits<int32_t>::min(),
                std::numeric_limits<int32_t>::min()),
            std::numeric_limits<int32_t>::max());  // the documented overflow
  EXPECT_EQ(saturating_rounding_doubling_high_mul(0, 12345), 0);
}

TEST(MultiplyByQuantizedMultiplier, ApproximatesRealMultiplier) {
  Rng rng(4);
  for (int rep = 0; rep < 2000; ++rep) {
    // multiplier in [2^30, 2^31), shift in [0, 8].
    const auto mult = static_cast<int32_t>(
        rng.uniform_int(1ll << 30, (1ll << 31) - 1));
    const int shift = static_cast<int>(rng.uniform_int(0, 8));
    const auto x = static_cast<int32_t>(rng.uniform_int(-1 << 24, 1 << 24));
    const double real =
        static_cast<double>(x) * static_cast<double>(mult) /
        std::pow(2.0, 31 + shift);
    const int32_t got = multiply_by_quantized_multiplier(x, mult, shift);
    EXPECT_NEAR(static_cast<double>(got), real, 1.5)
        << "x=" << x << " mult=" << mult << " shift=" << shift;
  }
}

}  // namespace
}  // namespace tincy
