#include <gtest/gtest.h>

#include <filesystem>

#include "core/rng.hpp"
#include "nn/builder.hpp"
#include "nn/ops.hpp"
#include "nn/zoo.hpp"
#include "offload/cpu_backend.hpp"
#include "offload/fabric_backend.hpp"
#include "offload/import.hpp"
#include "offload/registration.hpp"

namespace tincy::offload {
namespace {

const char* kSubnetCfg =
    "[net]\nwidth=12\nheight=12\nchannels=4\n"
    "[convolutional]\nbatch_normalize=1\nfilters=8\nsize=3\nstride=1\n"
    "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n"
    "in_scale=0.25\nout_scale=0.5\n"
    "[maxpool]\nsize=2\nstride=2\n"
    "[convolutional]\nbatch_normalize=1\nfilters=16\nsize=3\nstride=1\n"
    "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n"
    "in_scale=0.5\nout_scale=0.5\n";

/// Subnetwork with deterministic random weights.
std::unique_ptr<nn::Network> make_subnet() {
  auto net = nn::build_network_from_string(kSubnetCfg);
  Rng rng(301);
  nn::zoo::randomize(*net, rng);
  return net;
}

class OffloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_standard_backends();
    dir_ = (std::filesystem::temp_directory_path() / "tincy_offload_test")
               .string();
    std::filesystem::remove_all(dir_);
    const auto subnet = make_subnet();
    export_binparams(*subnet, dir_);
    register_inline_network("test-subnet", kSubnetCfg);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(OffloadTest, RegistryKnowsStandardBackends) {
  auto& reg = nn::OffloadRegistry::instance();
  EXPECT_TRUE(reg.contains("fabric.so"));
  EXPECT_TRUE(reg.contains("cpu_qnn.so"));
  EXPECT_FALSE(reg.contains("missing.so"));
  EXPECT_THROW(reg.open("missing.so"), Error);
}

TEST_F(OffloadTest, NetworkWithOffloadSectionRunsOnFabric) {
  // The Fig. 4 mechanism end to end: an enclosing network whose hidden
  // part is a single [offload] section backed by fabric.so.
  const std::string cfg =
      "[net]\nwidth=12\nheight=12\nchannels=4\n"
      "[offload]\n"
      "library=fabric.so\n"
      "network=inline:test-subnet\n"
      "weights=" + dir_ + "\n"
      "height=6\nwidth=6\nchannel=16\n";
  const auto net = nn::build_network_from_string(cfg);
  ASSERT_EQ(net->num_layers(), 1);
  EXPECT_EQ(net->output_shape(), Shape({16, 6, 6}));

  // load_weights hook pulls the binparams (Fig. 3 life cycle).
  dynamic_cast<nn::OffloadLayer&>(net->layer(0)).backend().load_weights();

  Rng rng(303);
  Tensor in(Shape{4, 12, 12});
  for (int64_t i = 0; i < in.numel(); ++i)
    in[i] = 0.25f * static_cast<float>(rng.uniform_int(0, 7));
  const Tensor& out = net->forward(in);

  // Must equal the plain CPU execution of the subnetwork.
  const auto subnet = make_subnet();
  const Tensor& expected = subnet->forward(in);
  for (int64_t i = 0; i < out.numel(); ++i)
    EXPECT_FLOAT_EQ(out[i], expected[i]) << i;
}

TEST_F(OffloadTest, FabricBackendValidatesDeclaredGeometry) {
  const std::string cfg =
      "[net]\nwidth=12\nheight=12\nchannels=4\n"
      "[offload]\nlibrary=fabric.so\nnetwork=inline:test-subnet\n"
      "weights=" + dir_ + "\n"
      "height=9\nwidth=9\nchannel=16\n";  // wrong geometry
  const auto net = nn::build_network_from_string(cfg);
  auto& layer = dynamic_cast<nn::OffloadLayer&>(net->layer(0));
  EXPECT_THROW(layer.backend().load_weights(), Error);
}

TEST_F(OffloadTest, CpuBackendMatchesDirectExecution) {
  const std::string cfg =
      "[net]\nwidth=12\nheight=12\nchannels=4\n"
      "[offload]\nlibrary=cpu_qnn.so\nnetwork=inline:test-subnet\n"
      "weights=\nheight=6\nwidth=6\nchannel=16\n";
  const auto net = nn::build_network_from_string(cfg);
  auto& layer = dynamic_cast<nn::OffloadLayer&>(net->layer(0));
  auto& backend = dynamic_cast<CpuBackend&>(layer.backend());
  // Give the CPU backend the same deterministic weights.
  Rng rng(301);
  nn::zoo::randomize(backend.subnet(), rng);

  Rng input_rng(303);
  Tensor in(Shape{4, 12, 12});
  for (int64_t i = 0; i < in.numel(); ++i)
    in[i] = 0.25f * static_cast<float>(input_rng.uniform_int(0, 7));
  const Tensor& out = net->forward(in);
  const auto subnet = make_subnet();
  const Tensor& expected = subnet->forward(in);
  for (int64_t i = 0; i < out.numel(); ++i) EXPECT_FLOAT_EQ(out[i], expected[i]);
}

TEST_F(OffloadTest, OpsAccountingFlowsThroughOffload) {
  const std::string cfg =
      "[net]\nwidth=12\nheight=12\nchannels=4\n"
      "[offload]\nlibrary=fabric.so\nnetwork=inline:test-subnet\n"
      "weights=" + dir_ + "\nheight=6\nwidth=6\nchannel=16\n";
  const auto net = nn::build_network_from_string(cfg);
  auto& layer = dynamic_cast<nn::OffloadLayer&>(net->layer(0));
  layer.backend().load_weights();
  const auto rows = nn::ops_rows(*net);
  ASSERT_EQ(rows.size(), 1u);
  // conv1: 2·(4·9)·8·144 + conv2: 2·(8·9)·16·36 = 82,944 + 82,944.
  EXPECT_EQ(rows[0].ops, 165888);
  EXPECT_EQ(rows[0].precision.name(), "W1A3");
  EXPECT_TRUE(rows[0].dot_product);
}

TEST_F(OffloadTest, LifecycleHooksInvoked) {
  // A recording backend verifies the Fig. 3 hook order:
  // init → load_weights → forward → destroy.
  static std::vector<std::string> calls;
  calls.clear();
  class Recorder final : public nn::OffloadBackend {
   public:
    void init(const nn::OffloadConfig& cfg, Shape) override {
      calls.push_back("init");
      shape_ = cfg.output_shape;
    }
    void load_weights() override { calls.push_back("load_weights"); }
    void forward(const Tensor&, Tensor& out) override {
      calls.push_back("forward");
      out.fill(1.0f);
    }
    void destroy() override { calls.push_back("destroy"); }

   private:
    Shape shape_;
  };
  nn::OffloadRegistry::instance().register_library(
      "recorder.so", [] { return std::make_unique<Recorder>(); });

  {
    const auto net = nn::build_network_from_string(
        "[net]\nwidth=4\nheight=4\nchannels=1\n"
        "[offload]\nlibrary=recorder.so\nnetwork=x\nweights=y\n"
        "height=4\nwidth=4\nchannel=1\n");
    auto& layer = dynamic_cast<nn::OffloadLayer&>(net->layer(0));
    layer.backend().load_weights();
    Tensor in(Shape{1, 4, 4});
    net->forward(in);
  }  // destruction triggers destroy()
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0], "init");
  EXPECT_EQ(calls[1], "load_weights");
  EXPECT_EQ(calls[2], "forward");
  EXPECT_EQ(calls[3], "destroy");
}

TEST_F(OffloadTest, InlineNetworkRegistry) {
  register_inline_network("x", "[net]\nwidth=1\n");
  EXPECT_EQ(inline_network("x"), "[net]\nwidth=1\n");
  EXPECT_THROW(inline_network("never-registered"), Error);
}

}  // namespace
}  // namespace tincy::offload
