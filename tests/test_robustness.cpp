// Failure-injection tests: malformed and truncated on-disk artifacts and
// API misuse must fail loudly with tincy::Error, never silently corrupt.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/rng.hpp"
#include "fabric/binparam.hpp"
#include "nn/builder.hpp"
#include "nn/weights_io.hpp"
#include "nn/zoo.hpp"
#include "offload/import.hpp"
#include "video/ppm.hpp"

namespace tincy {
namespace {

namespace fs = std::filesystem;

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "tincy_robustness").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<nn::Network> quant_subnet() {
    auto net = nn::build_network_from_string(
        "[net]\nwidth=8\nheight=8\nchannels=2\n"
        "[convolutional]\nbatch_normalize=1\nfilters=4\nsize=3\nstride=1\n"
        "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n"
        "in_scale=0.25\nout_scale=0.25\n");
    Rng rng(1);
    nn::zoo::randomize(*net, rng);
    return net;
  }

  std::string dir_;
};

TEST_F(RobustnessTest, TruncatedWeightFileThrows) {
  const auto net = quant_subnet();
  const std::string path = dir_ + "/weights.bin";
  nn::save_weights(*net, path);

  // Chop the file short of the payload.
  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);
  const auto fresh = nn::build_network_from_string(
      "[net]\nwidth=8\nheight=8\nchannels=2\n"
      "[convolutional]\nbatch_normalize=1\nfilters=4\nsize=3\nstride=1\n"
      "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n");
  EXPECT_THROW(nn::load_weights(*fresh, path), Error);
}

TEST_F(RobustnessTest, WeightFileForDifferentTopologyThrows) {
  // A smaller network's weight file is shorter than the bigger topology
  // expects; loading must fail on the short read, not wrap around.
  const auto small = quant_subnet();
  const std::string path = dir_ + "/small.bin";
  nn::save_weights(*small, path);

  const auto big = nn::build_network_from_string(
      "[net]\nwidth=8\nheight=8\nchannels=2\n"
      "[convolutional]\nbatch_normalize=1\nfilters=64\nsize=3\nstride=1\n"
      "pad=1\nactivation=relu\n");
  EXPECT_THROW(nn::load_weights(*big, path), Error);
}

TEST_F(RobustnessTest, TruncatedBinparamWeightsThrow) {
  const auto net = quant_subnet();
  offload::export_binparams(*net, dir_);
  const std::string wfile = dir_ + "/layer00.weights.bin";
  ASSERT_TRUE(fs::exists(wfile));
  fs::resize_file(wfile, fs::file_size(wfile) / 2);
  EXPECT_THROW(fabric::load_binparams(dir_), Error);
}

TEST_F(RobustnessTest, TruncatedBinparamThresholdsThrow) {
  const auto net = quant_subnet();
  offload::export_binparams(*net, dir_);
  const std::string tfile = dir_ + "/layer00.thresh.bin";
  ASSERT_TRUE(fs::exists(tfile));
  fs::resize_file(tfile, 3);
  EXPECT_THROW(fabric::load_binparams(dir_), Error);
}

TEST_F(RobustnessTest, GarbageBinparamWeightsHeaderThrows) {
  const auto net = quant_subnet();
  offload::export_binparams(*net, dir_);
  std::ofstream out(dir_ + "/layer00.weights.bin",
                    std::ios::binary | std::ios::trunc);
  const int64_t bogus[2] = {-5, 0};  // negative rows, zero cols
  out.write(reinterpret_cast<const char*>(bogus), sizeof bogus);
  out.close();
  EXPECT_THROW(fabric::load_binparams(dir_), Error);
}

TEST_F(RobustnessTest, MissingMetaMeansNoLayers) {
  // An empty directory yields a clean error, not a zero-layer accelerator.
  EXPECT_THROW(fabric::load_binparams(dir_), Error);
}

TEST_F(RobustnessTest, ExportRejectsFloatLayers) {
  const auto net = nn::build_network_from_string(
      "[net]\nwidth=8\nheight=8\nchannels=2\n"
      "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\n"
      "activation=relu\n");  // float layer: not offloadable
  EXPECT_THROW(offload::export_binparams(*net, dir_), Error);
}

TEST_F(RobustnessTest, OffloadSectionMissingGeometryThrows) {
  EXPECT_THROW(nn::build_network_from_string(
                   "[net]\nwidth=8\nheight=8\nchannels=2\n"
                   "[offload]\nlibrary=cpu_qnn.so\nnetwork=x\n"),
               Error);
}

TEST_F(RobustnessTest, CorruptPpmRejected) {
  // Wrong magic (ASCII P3 instead of binary P6).
  const std::string ascii_path = dir_ + "/ascii.ppm";
  std::ofstream(ascii_path) << "P3\n2 2\n255\n0 0 0 0 0 0 0 0 0 0 0 0\n";
  EXPECT_THROW(video::read_ppm(ascii_path), Error);

  // Correct header, truncated pixel payload.
  const std::string short_path = dir_ + "/short.ppm";
  std::ofstream(short_path, std::ios::binary) << "P6\n4 4\n255\nxy";
  EXPECT_THROW(video::read_ppm(short_path), Error);

  EXPECT_THROW(video::read_ppm(dir_ + "/missing.ppm"), Error);
}

}  // namespace
}  // namespace tincy
