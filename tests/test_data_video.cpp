#include <gtest/gtest.h>

#include <array>
#include <filesystem>

#include "data/image.hpp"
#include "data/synthdigits.hpp"
#include "data/synthvoc.hpp"
#include "video/camera.hpp"
#include "video/draw.hpp"
#include "video/ppm.hpp"
#include "video/sink.hpp"

namespace tincy {
namespace {

TEST(SynthVoc, Deterministic) {
  const data::SynthVoc a({.image_size = 32}, 5);
  const data::SynthVoc b({.image_size = 32}, 5);
  const auto sa = a.sample(17);
  const auto sb = b.sample(17);
  EXPECT_EQ(sa.image, sb.image);
  ASSERT_EQ(sa.objects.size(), sb.objects.size());
  for (size_t i = 0; i < sa.objects.size(); ++i)
    EXPECT_EQ(sa.objects[i].class_id, sb.objects[i].class_id);
}

TEST(SynthVoc, DifferentIndicesDiffer) {
  const data::SynthVoc d({.image_size = 32}, 5);
  EXPECT_FALSE(d.sample(0).image == d.sample(1).image);
}

TEST(SynthVoc, GroundTruthInsideImage) {
  const data::SynthVoc d({.image_size = 48, .num_classes = 6}, 9);
  for (int64_t i = 0; i < 50; ++i) {
    const auto s = d.sample(i);
    EXPECT_GE(s.objects.size(), 1u);
    for (const auto& gt : s.objects) {
      EXPECT_GE(gt.box.left(), -1e-5f);
      EXPECT_LE(gt.box.right(), 1.0f + 1e-5f);
      EXPECT_GE(gt.box.top(), -1e-5f);
      EXPECT_LE(gt.box.bottom(), 1.0f + 1e-5f);
      EXPECT_GE(gt.class_id, 0);
      EXPECT_LT(gt.class_id, 6);
    }
  }
}

TEST(SynthVoc, PixelsInUnitRange) {
  const data::SynthVoc d({.image_size = 32}, 11);
  const auto s = d.sample(3);
  for (int64_t i = 0; i < s.image.numel(); ++i) {
    EXPECT_GE(s.image[i], 0.0f);
    EXPECT_LE(s.image[i], 1.0f);
  }
}

TEST(SynthVoc, ObjectActuallyRendered) {
  // The object's center pixel must carry its class color, not background.
  data::SynthVocConfig cfg;
  cfg.image_size = 64;
  cfg.background_noise = 0.0f;
  const data::SynthVoc d(cfg, 13);
  const auto s = d.sample(0);
  const auto& gt = s.objects.back();  // last object drawn on top
  const auto cx = static_cast<int64_t>(gt.box.x * 64.0f);
  const auto cy = static_cast<int64_t>(gt.box.y * 64.0f);
  // Center of circle/square/triangle is always covered.
  float mx = 0.0f;
  for (int c = 0; c < 3; ++c) mx = std::max(mx, s.image.at(c, cy, cx));
  EXPECT_GT(mx, 0.7f);  // palette colors have a dominant bright channel
}

TEST(SynthVoc, ClassNames) {
  const data::SynthVoc d({.image_size = 32, .num_classes = 6}, 1);
  EXPECT_EQ(d.class_name(0), "red-circle");
  EXPECT_EQ(d.class_name(1), "red-square");
  EXPECT_EQ(d.class_name(3), "green-circle");
  EXPECT_THROW(d.class_name(6), Error);
}

TEST(Image, ResizeBilinearIdentity) {
  Tensor img(Shape{3, 5, 7});
  for (int64_t i = 0; i < img.numel(); ++i) img[i] = static_cast<float>(i);
  const Tensor same = data::resize_bilinear(img, 5, 7);
  for (int64_t i = 0; i < img.numel(); ++i) EXPECT_NEAR(same[i], img[i], 1e-5f);
}

TEST(Image, ResizePreservesConstant) {
  Tensor img(Shape{3, 4, 4}, 0.7f);
  const Tensor up = data::resize_bilinear(img, 9, 13);
  for (int64_t i = 0; i < up.numel(); ++i) EXPECT_NEAR(up[i], 0.7f, 1e-5f);
}

TEST(Image, LetterboxWideImage) {
  Tensor img(Shape{3, 50, 100}, 1.0f);  // 2:1 wide
  const Tensor boxed = data::letterbox(img, 64);
  EXPECT_EQ(boxed.shape(), Shape({3, 64, 64}));
  // Top band is the 0.5 gray padding, middle rows are image content.
  EXPECT_FLOAT_EQ(boxed.at(0, 0, 32), 0.5f);
  EXPECT_FLOAT_EQ(boxed.at(0, 32, 32), 1.0f);
}

TEST(Image, LetterboxSquareNoPadding) {
  Tensor img(Shape{3, 40, 40}, 0.9f);
  const Tensor boxed = data::letterbox(img, 32);
  for (int64_t i = 0; i < boxed.numel(); ++i) EXPECT_NEAR(boxed[i], 0.9f, 1e-5f);
}

TEST(Image, UnletterboxInvertsBoxMapping) {
  // A box at known original coords, letterboxed, must map back.
  const int64_t ow = 100, oh = 50, size = 64;
  // In the boxed frame, the image occupies the middle 32 rows.
  // Original box center (0.5, 0.5) maps to boxed (0.5, 0.5).
  float bx = 0.5f, by = 0.5f, bw = 0.2f, bh = 0.25f;
  data::unletterbox_box(bx, by, bw, bh, ow, oh, size);
  EXPECT_NEAR(bx, 0.5f, 1e-5f);
  EXPECT_NEAR(by, 0.5f, 1e-5f);
  EXPECT_NEAR(bw, 0.2f, 1e-5f);       // width axis unscaled (w >= h)
  EXPECT_NEAR(bh, 0.25f * 2.0f, 1e-5f);  // height axis stretched back
}

TEST(Camera, SequenceNumbersMonotone) {
  video::SyntheticCamera cam({.width = 32, .height = 32});
  for (int64_t i = 0; i < 10; ++i) {
    const video::Frame f = cam.read_frame();
    EXPECT_EQ(f.sequence, i);
    EXPECT_EQ(f.image.shape(), Shape({3, 32, 32}));
    EXPECT_FALSE(f.truth.empty());
  }
}

TEST(Camera, ObjectsStayInBounds) {
  video::SyntheticCamera cam(
      {.width = 48, .height = 32, .num_objects = 3, .speed = 0.05f});
  for (int i = 0; i < 200; ++i) {
    const video::Frame f = cam.read_frame();
    for (const auto& gt : f.truth) {
      EXPECT_GE(gt.box.left(), -1e-4f);
      EXPECT_LE(gt.box.right(), 1.0f + 1e-4f);
      EXPECT_GE(gt.box.top(), -1e-4f);
      EXPECT_LE(gt.box.bottom(), 1.0f + 1e-4f);
    }
  }
}

TEST(Camera, SceneActuallyMoves) {
  video::SyntheticCamera cam({.width = 32, .height = 32, .speed = 0.02f});
  const auto a = cam.read_frame();
  for (int i = 0; i < 10; ++i) cam.read_frame();
  const auto b = cam.read_frame();
  EXPECT_NE(a.truth[0].box.x + a.truth[0].box.y,
            b.truth[0].box.x + b.truth[0].box.y);
}

TEST(Draw, OutlinesBox) {
  Tensor img(Shape{3, 32, 32}, 0.0f);
  std::vector<detect::Detection> dets{
      {{0.5f, 0.5f, 0.5f, 0.5f}, 0, 0.9f, 1.0f}};
  video::draw_detections(img, dets, 1);
  // Class 0 color is red-ish: strong channel 0 on the outline.
  EXPECT_GT(img.at(0, 8, 16), 0.9f);   // top edge
  EXPECT_GT(img.at(0, 24, 16), 0.9f);  // bottom edge
  EXPECT_GT(img.at(0, 16, 8), 0.9f);   // left edge
  EXPECT_FLOAT_EQ(img.at(0, 16, 16), 0.0f);  // interior untouched
}

TEST(Draw, ClipsOutOfImageBoxes) {
  Tensor img(Shape{3, 16, 16}, 0.0f);
  std::vector<detect::Detection> dets{
      {{0.0f, 0.0f, 0.8f, 0.8f}, 1, 0.9f, 1.0f}};  // spills over the corner
  EXPECT_NO_THROW(video::draw_detections(img, dets));
}

TEST(Ppm, RoundTrip) {
  Tensor img(Shape{3, 5, 7});
  for (int64_t i = 0; i < img.numel(); ++i)
    img[i] = static_cast<float>(i % 256) / 255.0f;
  const auto path =
      (std::filesystem::temp_directory_path() / "tincy_test.ppm").string();
  video::write_ppm(path, img);
  const Tensor back = video::read_ppm(path);
  ASSERT_EQ(back.shape(), img.shape());
  for (int64_t i = 0; i < img.numel(); ++i)
    EXPECT_NEAR(back[i], img[i], 1.0f / 255.0f);
  std::filesystem::remove(path);
}

TEST(SynthDigits, Deterministic) {
  const data::SynthDigits a(5), b(5);
  const auto sa = a.sample(3), sb = b.sample(3);
  EXPECT_EQ(sa.label, sb.label);
  EXPECT_EQ(sa.image, sb.image);
}

TEST(SynthDigits, LabelsCoverAllDigits) {
  const data::SynthDigits d(7);
  std::array<bool, 10> seen{};
  for (int64_t i = 0; i < 200; ++i) {
    const auto s = d.sample(i);
    ASSERT_GE(s.label, 0);
    ASSERT_LE(s.label, 9);
    seen[static_cast<size_t>(s.label)] = true;
  }
  for (int digit = 0; digit < 10; ++digit) EXPECT_TRUE(seen[static_cast<size_t>(digit)]) << digit;
}

TEST(SynthDigits, GlyphActuallyBright) {
  // Foreground pixels must clearly separate from the background.
  const data::SynthDigits d(9);
  const auto s = d.sample(0);
  EXPECT_EQ(s.image.shape(), Shape({1, 28, 28}));
  float lo = 1.0f, hi = 0.0f;
  for (int64_t i = 0; i < s.image.numel(); ++i) {
    lo = std::min(lo, s.image[i]);
    hi = std::max(hi, s.image[i]);
  }
  EXPECT_LT(lo, 0.35f);
  EXPECT_GT(hi, 0.6f);
}

TEST(SynthDigits, DistinctDigitsRenderDifferently) {
  const data::SynthDigits d(11);
  // Find two samples with different labels and compare images.
  const auto a = d.sample(0);
  for (int64_t i = 1; i < 50; ++i) {
    const auto b = d.sample(i);
    if (b.label != a.label) {
      EXPECT_FALSE(a.image == b.image);
      return;
    }
  }
  FAIL() << "no differing labels in 50 samples";
}

TEST(Sink, OrderChecking) {
  video::OrderCheckingSink sink;
  video::Frame f;
  f.sequence = 0;
  sink.push(f);
  f.sequence = 1;
  sink.push(f);
  f.sequence = 2;
  sink.push(f);
  EXPECT_EQ(sink.frames_received(), 3);
  EXPECT_TRUE(sink.in_order());
  f.sequence = 1;  // overtaking frame
  sink.push(f);
  EXPECT_FALSE(sink.in_order());
}

}  // namespace
}  // namespace tincy
