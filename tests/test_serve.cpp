// Concurrency suite for the multi-stream serving layer (src/serve).
// This is the primary TSan target: run it from a -DTINCY_SANITIZE=thread
// build to exercise the scheduler, arbiter and shutdown paths under the
// race detector (see tests/README.md).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/errors.hpp"
#include "core/rng.hpp"
#include "nn/builder.hpp"
#include "nn/zoo.hpp"
#include "pipeline/demo.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/arbiter.hpp"
#include "serve/demo.hpp"
#include "serve/server.hpp"
#include "video/camera.hpp"

// ServeStage carries optional batched fields (batch_work, engine_layer)
// with safe defaults; the three-field {name, work, uses_engine} literal
// stays the canonical spelling for plain CPU stages throughout this suite.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace tincy::serve {
namespace {

video::Frame make_frame(int64_t seq) {
  video::Frame f;
  f.sequence = seq;
  return f;
}

// --- EngineArbiter ---

TEST(EngineArbiter, ExclusiveAndCountsGrants) {
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry);
  arb.add_session(0);
  arb.add_session(1);
  EXPECT_TRUE(arb.try_acquire(0));
  EXPECT_TRUE(arb.busy());
  EXPECT_FALSE(arb.try_acquire(1));  // held -> refused, claim pending
  EXPECT_EQ(arb.pending(), 1);
  arb.release(0);
  EXPECT_FALSE(arb.busy());
  // Session 1 has the pending claim; 0 must yield to it now.
  EXPECT_FALSE(arb.try_acquire(0));
  EXPECT_TRUE(arb.try_acquire(1));
  arb.release(1);
  EXPECT_EQ(arb.grants(), 2);
  EXPECT_EQ(registry.snapshot().counter_value("serve.arbiter.grants"), 2);
}

TEST(EngineArbiter, WeightedRoundRobinShares) {
  // Both sessions permanently contending: a weight-2 session must receive
  // twice the grants of a weight-1 session.
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry);
  arb.add_session(0, /*weight=*/2);
  arb.add_session(1, /*weight=*/1);
  int grants0 = 0, grants1 = 0;
  for (int round = 0; round < 30; ++round) {
    int64_t held;
    if (arb.try_acquire(0)) held = 0;
    else if (arb.try_acquire(1)) held = 1;
    else FAIL() << "engine free but nobody granted";
    // The loser of this round keeps (or registers) its pending claim.
    arb.try_acquire(held == 0 ? 1 : 0);
    (held == 0 ? grants0 : grants1)++;
    arb.release(held);
  }
  EXPECT_NEAR(grants0, 20, 2);
  EXPECT_NEAR(grants1, 10, 2);
}

TEST(EngineArbiter, PriorityTierBeatsWeightAndVtime) {
  // A pending high-tier session always takes the engine before a low-tier
  // one, whatever the weights say.
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry);
  arb.add_session(0, /*weight=*/8, /*priority=*/0);
  arb.add_session(1, /*weight=*/1, /*priority=*/1);
  ASSERT_TRUE(arb.try_acquire(0));
  EXPECT_FALSE(arb.try_acquire(1));  // pending high-tier claim
  arb.release(0);
  for (int round = 0; round < 10; ++round) {
    // As long as the high tier keeps contending, the low tier never wins.
    EXPECT_FALSE(arb.try_acquire(0));
    ASSERT_TRUE(arb.try_acquire(1));
    EXPECT_FALSE(arb.try_acquire(1));  // re-register the claim while held
    arb.release(1);
  }
  // High tier goes idle: the low tier's matured claim is served.
  arb.cancel(1);
  EXPECT_TRUE(arb.try_acquire(0));
  arb.release(0);
}

TEST(EngineArbiter, RemoveSessionWithdrawsPendingClaim) {
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry);
  arb.add_session(0);
  arb.add_session(1);
  ASSERT_TRUE(arb.try_acquire(0));
  EXPECT_FALSE(arb.try_acquire(1));
  EXPECT_EQ(arb.pending(), 1);
  arb.remove_session(1);  // churned away while its claim matures
  EXPECT_EQ(arb.pending(), 0);
  arb.release(0);
  // No stale claim from the removed session blocks the survivor.
  EXPECT_TRUE(arb.try_acquire(0));
  arb.release(0);
  EXPECT_EQ(registry.snapshot().gauge_value("serve.arbiter.queue_depth"), 0);
}

// --- EngineArbiter: gang scheduling (weight-DMA amortization) ---

TEST(EngineArbiter, GangCoalescesSameLayerPeers) {
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry, {.max_batch = 4});
  for (int64_t s = 0; s < 5; ++s) arb.add_session(s);

  // Five sessions ready at layer 7; one grant covers max_batch of them,
  // leader first then ties broken toward the lower id.
  const std::vector<int64_t> candidates{1, 2, 3, 4};
  std::vector<int64_t> gang;
  ASSERT_TRUE(arb.try_acquire_gang(0, /*layer=*/7, candidates, gang));
  EXPECT_EQ(gang, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(arb.grants(), 1);  // the whole gang is ONE grant
  arb.release(0);

  // The left-out peer leads its own (lone) gang next.
  ASSERT_TRUE(arb.try_acquire_gang(4, /*layer=*/7, {}, gang));
  EXPECT_EQ(gang, std::vector<int64_t>{4});
  arb.release(4);

  const auto snap = registry.snapshot();
  const auto* hist = snap.find_histogram("serve.arbiter.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->stats.count, 2);    // two grants...
  EXPECT_EQ(hist->stats.sum, 5.0);    // ...covering five frames
  EXPECT_EQ(snap.counter_value("serve.arbiter.grants"), 2);
}

TEST(EngineArbiter, GangPrefersHigherTierPeers) {
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry, {.max_batch = 3});
  arb.add_session(0);
  arb.add_session(1, /*weight=*/1, /*priority=*/0);
  arb.add_session(2, /*weight=*/1, /*priority=*/1);
  arb.add_session(3, /*weight=*/1, /*priority=*/0);
  // Room for two peers: the high-tier session rides first, then the
  // lowest-id equal-vtime peer.
  const std::vector<int64_t> candidates{1, 2, 3};
  std::vector<int64_t> gang;
  ASSERT_TRUE(arb.try_acquire_gang(0, /*layer=*/2, candidates, gang));
  EXPECT_EQ(gang, (std::vector<int64_t>{0, 2, 1}));
  arb.release(0);
}

TEST(EngineArbiter, PendingSameLayerPeerRidesAlongInsteadOfBlocking) {
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry, {.max_batch = 2});
  arb.add_session(0);
  arb.add_session(1);
  std::vector<int64_t> gang;
  ASSERT_TRUE(arb.try_acquire_gang(0, /*layer=*/3, {}, gang));
  EXPECT_FALSE(arb.try_acquire_gang(1, /*layer=*/3, {}, gang));
  arb.release(0);
  // Session 1 now has the stronger claim (smaller vtime): a layer-agnostic
  // re-acquire by 0 must yield to it...
  EXPECT_FALSE(arb.try_acquire(0));
  arb.cancel(0);
  // ...but offering 1 a seat in the gang is at least as good as leading,
  // so the gang grant goes through with the claimant aboard.
  const std::vector<int64_t> candidates{1};
  ASSERT_TRUE(arb.try_acquire_gang(0, /*layer=*/3, candidates, gang));
  EXPECT_EQ(gang, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(arb.pending(), 0);  // the ganged claim is consumed
  arb.release(0);
}

TEST(EngineArbiter, LingerHoldsPartialBatchThenSettles) {
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry, {.max_batch = 4, .batch_linger_us = 2000});
  arb.add_session(0);
  arb.add_session(1);
  arb.add_session(2);  // outside the gang: lingering is worthwhile
  const std::vector<int64_t> candidates{1};
  std::vector<int64_t> gang;
  // Partial gang (2 of 4) with a third session around: hold off.
  EXPECT_FALSE(arb.try_acquire_gang(0, /*layer=*/5, candidates, gang));
  const auto deadline = arb.linger_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_FALSE(arb.try_acquire_gang(0, /*layer=*/5, candidates, gang));
  EXPECT_FALSE(arb.busy());  // the engine stays free while lingering
  std::this_thread::sleep_until(*deadline + std::chrono::microseconds(100));
  // Deadline passed and nobody else arrived: settle for the partial gang.
  ASSERT_TRUE(arb.try_acquire_gang(0, /*layer=*/5, candidates, gang));
  EXPECT_EQ(gang, (std::vector<int64_t>{0, 1}));
  EXPECT_FALSE(arb.linger_deadline().has_value());
  arb.release(0);
}

TEST(EngineArbiter, LingerSkippedWhenBatchFullOrAllAboard) {
  telemetry::MetricsRegistry registry;
  // Absurdly long linger: any wait would hang the test.
  EngineArbiter arb(&registry, {.max_batch = 2, .batch_linger_us = 5000000});
  arb.add_session(0);
  arb.add_session(1);
  arb.add_session(2);
  std::vector<int64_t> gang;
  // Full batch: granting now cannot get better.
  ASSERT_TRUE(arb.try_acquire_gang(0, /*layer=*/1, std::vector<int64_t>{1},
                                   gang));
  EXPECT_EQ(gang.size(), 2u);
  arb.release(0);
  arb.remove_session(2);
  // Partial batch but every live session is aboard: nobody to wait for.
  EngineArbiter all(&registry, {.max_batch = 8, .batch_linger_us = 5000000});
  all.add_session(0);
  all.add_session(1);
  ASSERT_TRUE(all.try_acquire_gang(0, /*layer=*/1, std::vector<int64_t>{1},
                                   gang));
  EXPECT_EQ(gang.size(), 2u);
  all.release(0);
}

TEST(EngineArbiter, RemovedSessionNeverJoinsGang) {
  // Regression: the server's candidate scan can race a close — the
  // arbiter must skip a candidate whose session was removed between the
  // scan and the gang grant, and the removal must purge the (session,
  // layer) gang-queue entry.
  telemetry::MetricsRegistry registry;
  EngineArbiter arb(&registry, {.max_batch = 4});
  arb.add_session(0);
  arb.add_session(1);
  arb.add_session(2);
  std::vector<int64_t> gang;
  ASSERT_TRUE(arb.try_acquire_gang(0, /*layer=*/9, {}, gang));
  EXPECT_FALSE(arb.try_acquire_gang(1, /*layer=*/9, {}, gang));  // queued at 9
  arb.remove_session(1);  // closed while its gang-queue claim matures
  EXPECT_EQ(arb.pending(), 0);
  arb.release(0);
  // Stale candidate list still naming session 1: it must not be seated.
  const std::vector<int64_t> stale{1, 0};
  ASSERT_TRUE(arb.try_acquire_gang(2, /*layer=*/9, stale, gang));
  EXPECT_EQ(gang, (std::vector<int64_t>{2, 0}));
  arb.release(2);
}

// --- StreamServer: the 4x64 stress test (tier-1, primary TSan target) ---

TEST(StreamServer, FourStreamsPreserveOrderLoseNothing) {
  constexpr int kStreams = 4;
  constexpr int64_t kFrames = 64;

  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 4;
  opts.metrics = &registry;
  StreamServer server(opts);

  // Each stream stamps its frames in three stages (one engine-tagged) and
  // collects delivered sequence numbers.
  std::vector<std::vector<int64_t>> delivered(kStreams);
  std::vector<std::unique_ptr<std::mutex>> sink_mutex;
  for (int i = 0; i < kStreams; ++i)
    sink_mutex.push_back(std::make_unique<std::mutex>());
  std::atomic<int64_t> stamped{0};
  for (int i = 0; i < kStreams; ++i) {
    SessionConfig sc;
    sc.stages = {
        {"tag", [&stamped](video::Frame&) { stamped++; }, false},
        {"engine", [](video::Frame&) {}, true},
        {"finish", [](video::Frame&) {}, false},
    };
    auto* out = &delivered[static_cast<size_t>(i)];
    auto* m = sink_mutex[static_cast<size_t>(i)].get();
    sc.deliver = [out, m](video::Frame&& f) {
      std::lock_guard lock(*m);
      out->push_back(f.sequence);
    };
    sc.queue_capacity = kFrames;  // admit everything: loss would be a bug
    EXPECT_EQ(server.open_session(std::move(sc)), i);
  }
  server.start();

  // Concurrent producers, one per stream.
  std::vector<std::thread> producers;
  for (int i = 0; i < kStreams; ++i) {
    producers.emplace_back([&server, i] {
      for (int64_t seq = 0; seq < kFrames; ++seq)
        ASSERT_EQ(server.submit(i, make_frame(seq)),
                  ServeResult::kAccepted);
    });
  }
  for (auto& t : producers) t.join();
  server.drain();
  server.stop();

  // Per-stream frame order preserved; no frame lost or duplicated.
  for (int i = 0; i < kStreams; ++i) {
    const auto& seqs = delivered[static_cast<size_t>(i)];
    ASSERT_EQ(seqs.size(), static_cast<size_t>(kFrames)) << "stream " << i;
    for (int64_t s = 0; s < kFrames; ++s)
      EXPECT_EQ(seqs[static_cast<size_t>(s)], s) << "stream " << i;
  }
  EXPECT_EQ(stamped.load(), kStreams * kFrames);

  // serve.* counters must sum to the submitted frame count.
  const auto snap = server.snapshot();
  int64_t frames_sum = 0;
  for (int i = 0; i < kStreams; ++i) {
    const std::string base = "serve.session.s" + std::to_string(i) + ".";
    const int64_t n = snap.counter_value(base + "frames");
    EXPECT_EQ(n, kFrames) << base;
    frames_sum += n;
    const auto* lat = snap.find_histogram(base + "latency_ms");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->stats.count, kFrames);
    EXPECT_EQ(snap.counter_value(base + "rejected"), 0);
  }
  EXPECT_EQ(frames_sum, kStreams * kFrames);
  // Every frame crossed the engine stage exactly once.
  EXPECT_EQ(snap.counter_value("serve.arbiter.grants"),
            kStreams * kFrames);
}

// --- Backpressure and graceful rejection ---

TEST(StreamServer, OverloadRejectsInsteadOfBlocking) {
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.metrics = &registry;
  StreamServer server(opts);

  // A stage that blocks until released, so the queue genuinely fills.
  std::atomic<bool> release{false};
  SessionConfig sc;
  sc.stages = {{"block", [&release](video::Frame&) {
                  while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }, false}};
  sc.queue_capacity = 2;
  server.open_session(std::move(sc));
  server.start();

  // First submit is consumed by the worker; then the queue (capacity 2)
  // fills; further submissions are shed, not blocked.
  int accepted = 0, overloaded = 0;
  for (int i = 0; i < 10; ++i) {
    const auto r = server.submit(0, make_frame(i));
    if (r == ServeResult::kAccepted) ++accepted;
    if (r == ServeResult::kOverloaded) ++overloaded;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(accepted, 3);            // 1 in flight + 2 queued
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(accepted + overloaded, 10);
  EXPECT_EQ(server.rejected(0), overloaded);
  release.store(true);
  server.drain();
  EXPECT_EQ(server.delivered(0), accepted);
  server.stop();
  EXPECT_EQ(server.submit(0, make_frame(99)), ServeResult::kClosed);
  EXPECT_EQ(server.snapshot().counter_value("serve.session.s0.rejected"),
            overloaded);
}

// --- Shutdown: stop() mid-stream never loses the handoff ---

TEST(StreamServer, StopMidStreamIsClean) {
  for (int iter = 0; iter < 20; ++iter) {
    telemetry::MetricsRegistry registry;
    ServerOptions opts;
    opts.num_workers = 3;
    opts.metrics = &registry;
    StreamServer server(opts);
    std::vector<std::vector<int64_t>> delivered(2);
    std::mutex m;
    for (int i = 0; i < 2; ++i) {
      SessionConfig sc;
      sc.stages = {{"a", [](video::Frame&) {
                      std::this_thread::sleep_for(
                          std::chrono::microseconds(200));
                    }, false},
                   {"engine", [](video::Frame&) {}, true}};
      auto* out = &delivered[static_cast<size_t>(i)];
      sc.deliver = [out, &m](video::Frame&& f) {
        std::lock_guard lock(m);
        out->push_back(f.sequence);
      };
      sc.queue_capacity = 64;
      server.open_session(std::move(sc));
    }
    server.start();
    std::thread producer([&server] {
      for (int64_t seq = 0; seq < 64; ++seq)
        for (int i = 0; i < 2; ++i)
          if (server.submit(i, make_frame(seq)) == ServeResult::kClosed)
            return;
    });
    std::this_thread::sleep_for(std::chrono::microseconds(300 + 137 * iter));
    server.stop();
    producer.join();
    // Whatever arrived is an in-order prefix per stream.
    for (const auto& seqs : delivered)
      for (size_t s = 0; s < seqs.size(); ++s)
        EXPECT_EQ(seqs[s], static_cast<int64_t>(s));
  }
}

// --- Configuration validation ---

TEST(StreamServer, RejectsInvalidConfiguration) {
  {
    ServerOptions o;
    o.num_workers = 0;
    EXPECT_THROW(StreamServer{o}, Error);
  }
  {
    ServerOptions o;
    o.degrade_at = 0.0;
    EXPECT_THROW(StreamServer{o}, Error);
  }
  {
    ServerOptions o;
    o.degrade_at = 1.5;
    EXPECT_THROW(StreamServer{o}, Error);
  }

  StreamServer server;
  const auto stage = ServeStage{"noop", [](video::Frame&) {}, false};
  {
    SessionConfig sc;  // no stages
    EXPECT_THROW(server.open_session(std::move(sc)), Error);
  }
  {
    SessionConfig sc;
    sc.stages = {stage};
    sc.queue_capacity = 0;
    EXPECT_THROW(server.open_session(std::move(sc)), Error);
  }
  {
    SessionConfig sc;
    sc.stages = {stage};
    sc.queue_capacity = -4;
    EXPECT_THROW(server.open_session(std::move(sc)), Error);
  }
  {
    SessionConfig sc;
    sc.stages = {stage};
    sc.weight = 0;
    EXPECT_THROW(server.open_session(std::move(sc)), Error);
  }
  {
    SessionConfig sc;
    sc.stages = {stage};
    sc.priority = -1;
    EXPECT_THROW(server.open_session(std::move(sc)), Error);
  }
}

// --- Churn: close mid-frame, submit-after-close, open while running ---

TEST(StreamServer, CloseMidStreamDropsQueuedDeliversInFlight) {
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.metrics = &registry;
  StreamServer server(opts);

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::vector<int64_t> delivered;
  std::mutex m;
  SessionConfig sc;
  sc.stages = {{"block", [&](video::Frame&) {
                  entered.store(true);
                  while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }, false}};
  sc.deliver = [&](video::Frame&& f) {
    std::lock_guard lock(m);
    delivered.push_back(f.sequence);
  };
  sc.queue_capacity = 8;
  server.open_session(std::move(sc));
  server.start();

  // Frame 0 enters the stage and blocks there; 1..4 pile up in the queue.
  ASSERT_EQ(server.submit(0, make_frame(0)), ServeResult::kAccepted);
  while (!entered.load())
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  for (int64_t seq = 1; seq <= 4; ++seq)
    ASSERT_EQ(server.submit(0, make_frame(seq)), ServeResult::kAccepted);

  server.close_session(0);
  EXPECT_TRUE(server.closed(0));
  server.close_session(0);  // idempotent
  EXPECT_EQ(server.submit(0, make_frame(99)), ServeResult::kClosed);

  release.store(true);
  server.drain();  // in-flight frame 0 delivers; 1..4 were dropped
  server.stop();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 0);
  EXPECT_EQ(server.delivered(0), 1);
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.counter_value("serve.session.s0.frames"), 1);
  EXPECT_EQ(snap.counter_value("serve.session.s0.dropped"), 4);
}

TEST(StreamServer, OpenSessionWhileRunningServesNewStream) {
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 2;
  opts.metrics = &registry;
  StreamServer server(opts);

  std::vector<std::vector<int64_t>> delivered(2);
  std::vector<std::unique_ptr<std::mutex>> m;
  for (int i = 0; i < 2; ++i) m.push_back(std::make_unique<std::mutex>());
  auto make_config = [&](int i) {
    SessionConfig sc;
    sc.stages = {{"work", [](video::Frame&) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
                  }, false}};
    auto* out = &delivered[static_cast<size_t>(i)];
    auto* mu = m[static_cast<size_t>(i)].get();
    sc.deliver = [out, mu](video::Frame&& f) {
      std::lock_guard lock(*mu);
      out->push_back(f.sequence);
    };
    sc.queue_capacity = 16;
    return sc;
  };

  ASSERT_EQ(server.open_session(make_config(0)), 0);
  server.start();
  for (int64_t seq = 0; seq < 4; ++seq)
    ASSERT_EQ(server.submit(0, make_frame(seq)), ServeResult::kAccepted);

  // The join-mid-serve path: a second stream appears on a live server.
  ASSERT_EQ(server.open_session(make_config(1)), 1);
  EXPECT_EQ(server.num_sessions(), 2);
  for (int64_t seq = 0; seq < 4; ++seq) {
    ASSERT_EQ(server.submit(1, make_frame(seq)), ServeResult::kAccepted);
    ASSERT_EQ(server.submit(0, make_frame(4 + seq)), ServeResult::kAccepted);
  }
  server.drain();
  server.stop();

  ASSERT_EQ(delivered[0].size(), 8u);
  ASSERT_EQ(delivered[1].size(), 4u);
  for (size_t s = 0; s < delivered[0].size(); ++s)
    EXPECT_EQ(delivered[0][s], static_cast<int64_t>(s));
  for (size_t s = 0; s < delivered[1].size(); ++s)
    EXPECT_EQ(delivered[1][s], static_cast<int64_t>(s));
}

// --- Fault injection: a poisoned stage quarantines only its session ---

TEST(StreamServer, FaultQuarantinesOnlyThePoisonedSession) {
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 2;
  opts.metrics = &registry;
  StreamServer server(opts);

  std::vector<int64_t> healthy_out;
  std::mutex m;
  {
    SessionConfig sc;  // session 0: healthy
    sc.stages = {{"work", [](video::Frame&) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
                  }, false}};
    sc.deliver = [&](video::Frame&& f) {
      std::lock_guard lock(m);
      healthy_out.push_back(f.sequence);
    };
    sc.queue_capacity = 32;
    server.open_session(std::move(sc));
  }
  {
    SessionConfig sc;  // session 1: throws on its third frame
    auto count = std::make_shared<std::atomic<int64_t>>(0);
    sc.stages = {{"poison", [count](video::Frame&) {
                    if (count->fetch_add(1) + 1 == 3)
                      throw std::runtime_error("injected: boom");
                  }, false}};
    sc.queue_capacity = 32;
    server.open_session(std::move(sc));
  }
  server.start();

  int64_t poisoned_accepted = 0;
  for (int64_t seq = 0; seq < 12; ++seq) {
    ASSERT_EQ(server.submit(0, make_frame(seq)), ServeResult::kAccepted);
    const auto r = server.submit(1, make_frame(seq));
    if (r == ServeResult::kAccepted) ++poisoned_accepted;
    else EXPECT_EQ(r, ServeResult::kQuarantined);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  server.drain();

  EXPECT_FALSE(server.quarantined(0));
  EXPECT_TRUE(server.quarantined(1));
  EXPECT_NE(server.fault_message(1).find("boom"), std::string::npos);
  EXPECT_EQ(server.submit(1, make_frame(99)), ServeResult::kQuarantined);

  // The healthy session keeps serving after the fault.
  for (int64_t seq = 12; seq < 16; ++seq)
    ASSERT_EQ(server.submit(0, make_frame(seq)), ServeResult::kAccepted);
  server.drain();
  server.stop();

  ASSERT_EQ(healthy_out.size(), 16u);
  for (size_t s = 0; s < healthy_out.size(); ++s)
    EXPECT_EQ(healthy_out[s], static_cast<int64_t>(s));

  const auto snap = server.snapshot();
  EXPECT_EQ(snap.counter_value("serve.session.s0.faults"), 0);
  EXPECT_EQ(snap.gauge_value("serve.session.s0.quarantined"), 0.0);
  EXPECT_EQ(snap.counter_value("serve.session.s1.faults"), 1);
  EXPECT_EQ(snap.gauge_value("serve.session.s1.quarantined"), 1.0);
  // Every admitted poisoned-session frame is accounted: the two delivered
  // before the fault plus everything discarded at the poison point.
  EXPECT_EQ(snap.counter_value("serve.session.s1.frames") +
                snap.counter_value("serve.session.s1.dropped"),
            poisoned_accepted);
  EXPECT_EQ(snap.counter_value("serve.session.s1.frames"), 2);
}

// --- Overload policies beyond blanket rejection ---

TEST(StreamServer, ShedOldestAdmitsFreshFrames) {
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.overload_policy = OverloadPolicy::kShedOldest;
  opts.metrics = &registry;
  StreamServer server(opts);

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::vector<int64_t> delivered;
  std::mutex m;
  SessionConfig sc;
  sc.stages = {{"block", [&](video::Frame&) {
                  entered.store(true);
                  while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }, false}};
  sc.deliver = [&](video::Frame&& f) {
    std::lock_guard lock(m);
    delivered.push_back(f.sequence);
  };
  sc.queue_capacity = 2;
  server.open_session(std::move(sc));
  server.start();

  // Frame 0 blocks in the stage; 1 and 2 fill the queue; 3 and 4 shed the
  // two stalest queued frames instead of bouncing.
  ASSERT_EQ(server.submit(0, make_frame(0)), ServeResult::kAccepted);
  while (!entered.load())
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  for (int64_t seq = 1; seq <= 4; ++seq)
    ASSERT_EQ(server.submit(0, make_frame(seq)), ServeResult::kAccepted);

  release.store(true);
  server.drain();
  server.stop();

  // In-flight frame 0, then the two freshest; order still monotone.
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], 0);
  EXPECT_EQ(delivered[1], 3);
  EXPECT_EQ(delivered[2], 4);
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.counter_value("serve.session.s0.shed"), 2);
  EXPECT_EQ(snap.counter_value("serve.session.s0.rejected"), 0);
}

TEST(StreamServer, DegradePolicyMarksPressuredAdmissions) {
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 1;
  opts.overload_policy = OverloadPolicy::kDegrade;
  opts.degrade_at = 0.5;
  opts.metrics = &registry;
  StreamServer server(opts);

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::vector<int64_t> degraded;  // only the submitting thread touches it
  SessionConfig sc;
  sc.stages = {{"block", [&](video::Frame&) {
                  entered.store(true);
                  while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }, false}};
  sc.degrade = [&degraded](video::Frame& f) {
    degraded.push_back(f.sequence);
  };
  sc.queue_capacity = 4;
  server.open_session(std::move(sc));
  server.start();

  // Frame 0 blocks in the stage. Queue depth at admission: 1 -> 0, 2 -> 1,
  // 3 -> 2 (pressure mark ceil(0.5 * 4) = 2: degraded), 4 -> 3 (degraded),
  // 5 -> full: kDegrade still rejects at the hard limit.
  ASSERT_EQ(server.submit(0, make_frame(0)), ServeResult::kAccepted);
  while (!entered.load())
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  for (int64_t seq = 1; seq <= 4; ++seq)
    ASSERT_EQ(server.submit(0, make_frame(seq)), ServeResult::kAccepted);
  EXPECT_EQ(server.submit(0, make_frame(5)), ServeResult::kOverloaded);

  release.store(true);
  server.drain();
  server.stop();

  ASSERT_EQ(degraded.size(), 2u);
  EXPECT_EQ(degraded[0], 3);
  EXPECT_EQ(degraded[1], 4);
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.counter_value("serve.session.s0.degraded"), 2);
  EXPECT_EQ(snap.counter_value("serve.session.s0.rejected"), 1);
  EXPECT_EQ(snap.counter_value("serve.session.s0.frames"), 5);
}

// --- Golden determinism: 1-session server == single-stream pipeline ---

struct FrameRecord {
  int64_t sequence;
  std::vector<detect::Detection> detections;
};

std::vector<FrameRecord> run_reference_pipeline(uint64_t camera_seed,
                                                int64_t frames) {
  telemetry::MetricsRegistry registry;
  auto net = nn::build_network_from_string(
      nn::zoo::tiny_yolo_cfg(nn::zoo::TinyVariant::kTincy,
                             nn::zoo::QuantMode::kFloat, 64,
                             nn::zoo::CpuProfile::kFused),
      &registry);
  Rng rng(11);
  nn::zoo::randomize(*net, rng);
  video::SyntheticCamera camera({.width = 96, .height = 64,
                                 .seed = camera_seed});
  std::vector<FrameRecord> out;
  std::mutex m;
  pipeline::PipelineOptions po;
  po.stages = pipeline::make_demo_stages(*net, pipeline::DemoConfig{});
  po.source = [&camera] { return camera.read_frame(); };
  po.sink = [&out, &m](const video::Frame& f) {
    std::lock_guard lock(m);
    out.push_back({f.sequence, f.detections});
  };
  po.num_workers = 2;
  po.metrics = &registry;
  pipeline::Pipeline p(std::move(po));
  p.run(frames);
  return out;
}

std::vector<FrameRecord> run_serving_session(uint64_t camera_seed,
                                             int64_t frames) {
  telemetry::MetricsRegistry registry;
  auto net = nn::build_network_from_string(
      nn::zoo::tiny_yolo_cfg(nn::zoo::TinyVariant::kTincy,
                             nn::zoo::QuantMode::kFloat, 64,
                             nn::zoo::CpuProfile::kFused),
      &registry);
  Rng rng(11);  // identical weights to the reference
  nn::zoo::randomize(*net, rng);
  video::SyntheticCamera camera({.width = 96, .height = 64,
                                 .seed = camera_seed});
  ServerOptions opts;
  opts.num_workers = 2;
  opts.metrics = &registry;
  StreamServer server(opts);
  std::vector<FrameRecord> out;
  std::mutex m;
  SessionConfig sc;
  sc.stages = demo_session_stages(*net, pipeline::DemoConfig{},
                                  EnginePolicy::kHiddenLayers);
  sc.deliver = [&out, &m](video::Frame&& f) {
    std::lock_guard lock(m);
    out.push_back({f.sequence, std::move(f.detections)});
  };
  sc.queue_capacity = frames;
  server.open_session(std::move(sc));
  server.start();
  for (int64_t i = 0; i < frames; ++i)
    EXPECT_EQ(server.submit(0, camera.read_frame()),
              ServeResult::kAccepted);
  server.drain();
  server.stop();
  return out;
}

void expect_bit_identical(const std::vector<FrameRecord>& ref,
                          const std::vector<FrameRecord>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (size_t f = 0; f < ref.size(); ++f) {
    EXPECT_EQ(ref[f].sequence, got[f].sequence);
    ASSERT_EQ(ref[f].detections.size(), got[f].detections.size())
        << "frame " << f;
    for (size_t d = 0; d < ref[f].detections.size(); ++d) {
      const auto& a = ref[f].detections[d];
      const auto& b = got[f].detections[d];
      EXPECT_EQ(a.class_id, b.class_id);
      // Bit-identical: the serving layer must not perturb the math.
      EXPECT_EQ(a.objectness, b.objectness);
      EXPECT_EQ(a.class_prob, b.class_prob);
      EXPECT_EQ(a.box.x, b.box.x);
      EXPECT_EQ(a.box.y, b.box.y);
      EXPECT_EQ(a.box.w, b.box.w);
      EXPECT_EQ(a.box.h, b.box.h);
    }
  }
}

TEST(StreamServer, GoldenMatchesSingleStreamPipeline) {
  constexpr int64_t kFrames = 8;
  const auto ref = run_reference_pipeline(29, kFrames);
  const auto got = run_serving_session(29, kFrames);
  ASSERT_EQ(ref.size(), static_cast<size_t>(kFrames));
  expect_bit_identical(ref, got);
}

// The soak-grade variant: the golden session shares the server with a
// high-priority decoy that churns away mid-run and a poisoned decoy that
// joins live and quarantines itself. None of that — priority reordering
// at the engine, close-mid-stream drops, fault handling — may perturb the
// golden session's outputs by a single bit.
std::vector<FrameRecord> run_churny_serving_session(uint64_t camera_seed,
                                                    int64_t frames) {
  telemetry::MetricsRegistry registry;
  auto net = nn::build_network_from_string(
      nn::zoo::tiny_yolo_cfg(nn::zoo::TinyVariant::kTincy,
                             nn::zoo::QuantMode::kFloat, 64,
                             nn::zoo::CpuProfile::kFused),
      &registry);
  Rng rng(11);  // identical weights to the reference
  nn::zoo::randomize(*net, rng);
  video::SyntheticCamera camera({.width = 96, .height = 64,
                                 .seed = camera_seed});
  ServerOptions opts;
  opts.num_workers = 2;
  opts.metrics = &registry;
  StreamServer server(opts);
  std::vector<FrameRecord> out;
  std::mutex m;
  SessionConfig golden;
  golden.name = "golden";
  golden.stages = demo_session_stages(*net, pipeline::DemoConfig{},
                                      EnginePolicy::kHiddenLayers);
  golden.deliver = [&out, &m](video::Frame&& f) {
    std::lock_guard lock(m);
    out.push_back({f.sequence, std::move(f.detections)});
  };
  golden.queue_capacity = frames;
  const int64_t golden_id = server.open_session(std::move(golden));

  SessionConfig decoy;  // outranks the golden session at the engine
  decoy.name = "decoy";
  decoy.priority = 1;
  decoy.weight = 2;
  decoy.stages = {{"spin", [](video::Frame&) {
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(80));
                   }, false},
                  {"engine", [](video::Frame&) {
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(40));
                   }, true}};
  decoy.queue_capacity = 16;
  const int64_t decoy_id = server.open_session(std::move(decoy));
  server.start();

  int64_t poison_id = -1;
  for (int64_t i = 0; i < frames; ++i) {
    EXPECT_EQ(server.submit(golden_id, camera.read_frame()),
              ServeResult::kAccepted);
    if (i < 5) server.submit(decoy_id, make_frame(i));
    if (i == 2) {
      SessionConfig poison;  // joins live, faults on its second frame
      poison.name = "poison";
      auto count = std::make_shared<std::atomic<int64_t>>(0);
      poison.stages = {{"boom", [count](video::Frame&) {
                          if (count->fetch_add(1) + 1 == 2)
                            throw std::runtime_error("injected fault");
                        }, false}};
      poison.queue_capacity = 16;
      poison_id = server.open_session(std::move(poison));
      for (int64_t p = 0; p < 4; ++p)
        server.submit(poison_id, make_frame(p));
    }
    if (i == 5) server.close_session(decoy_id);  // leave mid-stream
  }
  server.drain();
  server.stop();
  EXPECT_TRUE(server.closed(decoy_id));
  EXPECT_TRUE(server.quarantined(poison_id));
  EXPECT_FALSE(server.quarantined(golden_id));
  return out;
}

TEST(StreamServer, GoldenSoakChurnDoesNotPerturbResults) {
  constexpr int64_t kFrames = 8;
  const auto ref = run_reference_pipeline(29, kFrames);
  const auto got = run_churny_serving_session(29, kFrames);
  ASSERT_EQ(ref.size(), static_cast<size_t>(kFrames));
  expect_bit_identical(ref, got);
}

// --- StreamServer: gang-scheduled engine stages ---

/// An engine stage all sessions share: batch_work stamps every ganged
/// frame deterministically (sequence-derived, independent of who else is
/// in the gang) and tallies the observed batch sizes.
ServeStage gang_engine_stage(std::atomic<int64_t>* frames,
                             std::atomic<int64_t>* passes,
                             std::atomic<int64_t>* largest) {
  ServeStage stage;
  stage.name = "engine";
  stage.uses_engine = true;
  stage.engine_layer = 0;
  stage.batch_work = [frames, passes,
                      largest](std::span<video::Frame* const> gang) {
    passes->fetch_add(1);
    frames->fetch_add(static_cast<int64_t>(gang.size()));
    int64_t seen = largest->load();
    while (seen < static_cast<int64_t>(gang.size()) &&
           !largest->compare_exchange_weak(seen,
                                           static_cast<int64_t>(gang.size())))
      ;
    for (video::Frame* f : gang) {
      f->features = Tensor(Shape{1});
      f->features[0] = static_cast<float>(1000 + f->sequence);
    }
    // One weight stream for the whole gang, then per-frame compute.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  return stage;
}

TEST(StreamServer, GangBatchesSameLayerFramesAcrossSessions) {
  constexpr int kStreams = 4;
  constexpr int64_t kFrames = 24;
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 2 * kStreams;
  opts.metrics = &registry;
  opts.arbiter = {.max_batch = kStreams, .batch_linger_us = 2000};
  StreamServer server(opts);

  std::atomic<int64_t> engine_frames{0}, engine_passes{0}, largest_gang{0};
  std::vector<std::vector<int64_t>> delivered(kStreams);
  std::vector<std::unique_ptr<std::mutex>> sink_mutex;
  for (int i = 0; i < kStreams; ++i)
    sink_mutex.push_back(std::make_unique<std::mutex>());
  for (int i = 0; i < kStreams; ++i) {
    SessionConfig sc;
    sc.stages.push_back({"pre", [](video::Frame&) {
                           std::this_thread::sleep_for(
                               std::chrono::microseconds(100));
                         }, false});
    sc.stages.push_back(
        gang_engine_stage(&engine_frames, &engine_passes, &largest_gang));
    auto* out = &delivered[static_cast<size_t>(i)];
    auto* m = sink_mutex[static_cast<size_t>(i)].get();
    sc.deliver = [out, m](video::Frame&& f) {
      // The batched stamp must be deterministic per frame, whatever gang
      // it rode in.
      ASSERT_EQ(f.features.numel(), 1);
      EXPECT_EQ(f.features[0], static_cast<float>(1000 + f.sequence));
      std::lock_guard lock(*m);
      out->push_back(f.sequence);
    };
    sc.queue_capacity = kFrames;
    server.open_session(std::move(sc));
  }
  server.start();
  std::vector<std::thread> producers;
  for (int i = 0; i < kStreams; ++i) {
    producers.emplace_back([&server, i] {
      for (int64_t seq = 0; seq < kFrames; ++seq)
        ASSERT_EQ(server.submit(i, make_frame(seq)), ServeResult::kAccepted);
    });
  }
  for (auto& t : producers) t.join();
  server.drain();
  server.stop();

  // Nothing lost, order preserved, per stream.
  for (int i = 0; i < kStreams; ++i) {
    const auto& seqs = delivered[static_cast<size_t>(i)];
    ASSERT_EQ(seqs.size(), static_cast<size_t>(kFrames)) << "stream " << i;
    for (int64_t s = 0; s < kFrames; ++s)
      EXPECT_EQ(seqs[static_cast<size_t>(s)], s) << "stream " << i;
  }
  // Every frame crossed the engine exactly once, and coalescing actually
  // happened: fewer passes than frames, some gang bigger than one frame.
  EXPECT_EQ(engine_frames.load(), kStreams * kFrames);
  EXPECT_LT(engine_passes.load(), kStreams * kFrames);
  EXPECT_GT(largest_gang.load(), 1);
  // Arbiter accounting: grants == passes, histogram sums the gang sizes.
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.counter_value("serve.arbiter.grants"), engine_passes.load());
  const auto* hist = snap.find_histogram("serve.arbiter.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->stats.count, engine_passes.load());
  EXPECT_EQ(static_cast<int64_t>(hist->stats.sum), engine_frames.load());
}

TEST(StreamServer, GangFaultQuarantinesEveryMember) {
  // A batch_work that throws poisons the whole gang: all member frames
  // were in the same engine pass.
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 4;
  opts.metrics = &registry;
  opts.arbiter = {.max_batch = 2, .batch_linger_us = 20000};
  StreamServer server(opts);
  std::atomic<int64_t> delivered{0};
  for (int i = 0; i < 2; ++i) {
    SessionConfig sc;
    ServeStage stage;
    stage.name = "engine";
    stage.uses_engine = true;
    stage.engine_layer = 0;
    stage.batch_work = [](std::span<video::Frame* const> gang) {
      if (gang.size() > 1) throw std::runtime_error("gang fault");
      // Lone frames pass: the sessions only fault when actually ganged.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    };
    sc.stages.push_back(std::move(stage));
    sc.deliver = [&delivered](video::Frame&&) { delivered++; };
    sc.queue_capacity = 8;
    server.open_session(std::move(sc));
  }
  server.start();
  for (int64_t seq = 0; seq < 4; ++seq) {
    ASSERT_EQ(server.submit(0, make_frame(seq)), ServeResult::kAccepted);
    ASSERT_EQ(server.submit(1, make_frame(seq)), ServeResult::kAccepted);
  }
  server.drain();
  server.stop();
  // Either some lone grants went through first or the very first pass was
  // ganged — but once a gang formed, BOTH members must be quarantined.
  if (server.quarantined(0) || server.quarantined(1)) {
    EXPECT_TRUE(server.quarantined(0));
    EXPECT_TRUE(server.quarantined(1));
    EXPECT_EQ(server.fault_message(0), "gang fault");
    EXPECT_EQ(server.fault_message(1), "gang fault");
  }
}

TEST(StreamServer, CloseMidBatchChurnStaysConsistent) {
  // Sessions churn while gangs form: closes race the candidate scan, new
  // sessions join mid-serve. Run under TSan (tier2-tsan) for the data-race
  // half of the claim; the invariant half (no lost/duplicated frames,
  // survivors unquarantined) is checked here.
  constexpr int64_t kFrames = 16;
  telemetry::MetricsRegistry registry;
  ServerOptions opts;
  opts.num_workers = 6;
  opts.metrics = &registry;
  opts.arbiter = {.max_batch = 3, .batch_linger_us = 500};
  StreamServer server(opts);

  std::atomic<int64_t> engine_frames{0}, engine_passes{0}, largest_gang{0};
  std::vector<std::atomic<int64_t>> delivered(8);
  auto open_one = [&](int slot) {
    SessionConfig sc;
    sc.stages.push_back(
        gang_engine_stage(&engine_frames, &engine_passes, &largest_gang));
    auto* count = &delivered[static_cast<size_t>(slot)];
    sc.deliver = [count](video::Frame&& f) {
      ASSERT_EQ(f.features.numel(), 1);
      EXPECT_EQ(f.features[0], static_cast<float>(1000 + f.sequence));
      count->fetch_add(1);
    };
    sc.queue_capacity = kFrames;
    return server.open_session(std::move(sc));
  };
  std::vector<int64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(open_one(i));
  server.start();

  std::vector<std::thread> producers;
  for (int i = 0; i < 4; ++i) {
    const int64_t sid = ids[static_cast<size_t>(i)];  // ids grows concurrently
    producers.emplace_back([&server, sid] {
      for (int64_t seq = 0; seq < kFrames; ++seq) {
        server.submit(sid, make_frame(seq));
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  // Churn against the producers: close two sessions mid-batch-formation,
  // open two replacements that immediately contend for gangs.
  std::this_thread::sleep_for(std::chrono::microseconds(600));
  server.close_session(ids[1]);
  ids.push_back(open_one(4));
  std::this_thread::sleep_for(std::chrono::microseconds(600));
  server.close_session(ids[3]);
  ids.push_back(open_one(5));
  for (int64_t seq = 0; seq < kFrames; ++seq)
    server.submit(ids[4], make_frame(seq));
  for (auto& t : producers) t.join();
  server.drain();
  server.stop();

  // Survivors are healthy; closed sessions answered kClosed past the cut.
  for (const int64_t id : {ids[0], ids[2], ids[4], ids[5]})
    EXPECT_FALSE(server.quarantined(id)) << "session " << id;
  EXPECT_TRUE(server.closed(ids[1]));
  EXPECT_TRUE(server.closed(ids[3]));
  // Engine accounting stayed exact through the churn: the batch_size
  // histogram covers every engine frame, one grant per pass.
  const auto snap = server.snapshot();
  EXPECT_EQ(snap.counter_value("serve.arbiter.grants"), engine_passes.load());
  const auto* hist = snap.find_histogram("serve.arbiter.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(static_cast<int64_t>(hist->stats.sum), engine_frames.load());
  // Everything admitted to a surviving session was delivered.
  for (const int64_t id : {ids[0], ids[2]})
    EXPECT_EQ(server.delivered(id), kFrames) << "session " << id;
}

}  // namespace
}  // namespace tincy::serve
