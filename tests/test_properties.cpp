// Cross-module property sweeps: the golden-model contract (fabric ==
// CPU quantized reference) over a grid of layer geometries and precisions,
// plus geometry sweeps for pooling and quantization invariants.

#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.hpp"
#include "fabric/accelerator.hpp"
#include "nn/builder.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/zoo.hpp"
#include "offload/import.hpp"
#include "quant/affine.hpp"

namespace tincy {
namespace {

using Geometry =
    std::tuple<int64_t, int64_t, int64_t, int, bool, bool>;
// (in_channels, filters, stride, abits, batch_norm, with_pool)

class FabricEquivalence : public ::testing::TestWithParam<Geometry> {};

TEST_P(FabricEquivalence, AcceleratorMatchesCpuGoldenModel) {
  const auto [in_c, filters, stride, abits, bn, pool] = GetParam();
  const float scale = 2.0f / static_cast<float>((1 << abits) - 1);
  std::string cfg = "[net]\nwidth=10\nheight=10\nchannels=" +
                    std::to_string(in_c) + "\n";
  cfg += "[convolutional]\n";
  if (bn) cfg += "batch_normalize=1\n";
  cfg += "filters=" + std::to_string(filters) +
         "\nsize=3\nstride=" + std::to_string(stride) +
         "\npad=1\nactivation=relu\nbinary=1\nabits=" +
         std::to_string(abits) + "\nkernel=quant_reference\nin_scale=" +
         std::to_string(scale) + "\nout_scale=" + std::to_string(scale) +
         "\n";
  if (pool) cfg += "[maxpool]\nsize=2\nstride=2\n";

  Rng rng(static_cast<uint64_t>(in_c * 1000 + filters * 10 + stride + abits));
  auto subnet = nn::build_network_from_string(cfg);
  nn::zoo::randomize(*subnet, rng);
  const fabric::QnnAccelerator acc = offload::import_accelerator(*subnet);

  for (int rep = 0; rep < 3; ++rep) {
    Tensor in(Shape{in_c, 10, 10});
    for (int64_t i = 0; i < in.numel(); ++i)
      in[i] = scale * static_cast<float>(
                          rng.uniform_int(0, (1 << abits) - 1));
    const Tensor expected = subnet->forward(in);
    const Tensor got = acc.forward(in);
    ASSERT_EQ(got.shape(), expected.shape());
    for (int64_t i = 0; i < got.numel(); ++i)
      ASSERT_EQ(got[i], expected[i])
          << "rep " << rep << " elem " << i << " cfg\n"
          << cfg;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeometryGrid, FabricEquivalence,
    ::testing::Values(Geometry{1, 4, 1, 1, false, false},
                      Geometry{1, 4, 1, 1, true, true},
                      Geometry{3, 8, 1, 2, true, false},
                      Geometry{3, 8, 2, 2, false, true},
                      Geometry{4, 16, 1, 3, true, true},
                      Geometry{8, 4, 2, 3, true, false},
                      Geometry{2, 32, 1, 4, true, true},
                      Geometry{16, 8, 1, 3, false, false},
                      Geometry{5, 7, 2, 3, true, true},
                      Geometry{7, 3, 1, 2, true, true}));

class PoolGeometry
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};
// (input size, pool size, stride)

TEST_P(PoolGeometry, MatchesNaiveWindowMax) {
  const auto [size, k, stride] = GetParam();
  Rng rng(static_cast<uint64_t>(size * 100 + k * 10 + stride));
  Tensor in(Shape{3, size, size});
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = rng.uniform(-2.0f, 2.0f);
  nn::MaxPoolLayer pool({k, stride}, in.shape());
  Tensor out(pool.output_shape());
  pool.forward(in, out);

  const int64_t pad_left = (k - 1) / 2;
  for (int64_t c = 0; c < 3; ++c)
    for (int64_t oh = 0; oh < out.shape().height(); ++oh)
      for (int64_t ow = 0; ow < out.shape().width(); ++ow) {
        float best = -1e30f;
        for (int64_t kh = 0; kh < k; ++kh)
          for (int64_t kw = 0; kw < k; ++kw) {
            const int64_t ih = oh * stride - pad_left + kh;
            const int64_t iw = ow * stride - pad_left + kw;
            if (ih < 0 || ih >= size || iw < 0 || iw >= size) continue;
            best = std::max(best, in.at(c, ih, iw));
          }
        ASSERT_EQ(out.at(c, oh, ow), best)
            << size << " " << k << " " << stride;
      }
}

INSTANTIATE_TEST_SUITE_P(Geometries, PoolGeometry,
                         ::testing::Values(std::tuple{8, 2, 2},
                                           std::tuple{9, 2, 2},
                                           std::tuple{13, 2, 1},
                                           std::tuple{7, 3, 2},
                                           std::tuple{6, 3, 1},
                                           std::tuple{10, 3, 3}));

class AffineSweep : public ::testing::TestWithParam<std::pair<float, float>> {
};

TEST_P(AffineSweep, RoundTripAndZeroInvariants) {
  const auto [lo, hi] = GetParam();
  const quant::AffineParams p = quant::choose_affine_params(lo, hi);
  // Zero exact.
  EXPECT_FLOAT_EQ(p.dequantize(static_cast<uint8_t>(p.zero_point)), 0.0f);
  // Round trip within half a step over the whole declared range.
  Rng rng(static_cast<uint64_t>(lo * 100 + hi * 7 + 1000000));
  for (int i = 0; i < 300; ++i) {
    const float x = rng.uniform(std::min(lo, 0.0f), std::max(hi, 0.0f));
    EXPECT_NEAR(p.dequantize(p.quantize(x)), x, p.scale / 2 + 1e-6f);
  }
  // Monotonicity of the code mapping.
  EXPECT_LE(p.quantize(lo), p.quantize(hi));
}

INSTANTIATE_TEST_SUITE_P(Ranges, AffineSweep,
                         ::testing::Values(std::pair{0.0f, 1.0f},
                                           std::pair{-1.0f, 1.0f},
                                           std::pair{-0.01f, 0.01f},
                                           std::pair{-100.0f, 5.0f},
                                           std::pair{0.5f, 2.0f},
                                           std::pair{-3.0f, -0.5f}));

}  // namespace
}  // namespace tincy
