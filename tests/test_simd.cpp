#include <gtest/gtest.h>

#include "core/fixed_point.hpp"
#include "core/rng.hpp"
#include "simd/vec.hpp"

namespace tincy::simd {
namespace {

TEST(Vec, LoadStoreSplat) {
  const float data[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const F32x4 v = F32x4::load(data);
  float out[4] = {};
  v.store(out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], data[i]);
  const I16x8 s = I16x8::splat(-7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(s[i], -7);
}

TEST(Vec, ElementwiseArithmetic) {
  F32x4 a{{1, 2, 3, 4}}, b{{10, 20, 30, 40}};
  const F32x4 sum = add(a, b);
  const F32x4 diff = sub(b, a);
  const F32x4 prod = mul(a, b);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sum[i], a[i] + b[i]);
    EXPECT_EQ(diff[i], b[i] - a[i]);
    EXPECT_EQ(prod[i], a[i] * b[i]);
  }
}

TEST(Vec, MultiplyAccumulate) {
  const F32x4 acc{{1, 1, 1, 1}}, a{{2, 3, 4, 5}}, b{{10, 10, 10, 10}};
  const F32x4 r = mla(acc, a, b);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], 1.0f + a[i] * 10.0f);
}

TEST(Vec, WideningMulS8NoOverflow) {
  // VMULL.S8: extreme ±127/−128 products must be exact in 16 bits.
  I8x8 a{}, b{};
  a.lane = {127, -128, 127, -128, 1, -1, 0, 50};
  b.lane = {127, -128, -128, 127, -1, -1, 99, 50};
  const I16x8 r = widening_mul(a, b);
  EXPECT_EQ(r[0], 16129);
  EXPECT_EQ(r[1], 16384);
  EXPECT_EQ(r[2], -16256);
  EXPECT_EQ(r[3], -16256);
  EXPECT_EQ(r[4], -1);
  EXPECT_EQ(r[5], 1);
  EXPECT_EQ(r[6], 0);
  EXPECT_EQ(r[7], 2500);
}

TEST(Vec, WideningMulS16) {
  I16x4 a{{32767, -32768, 100, -5}};
  I16x4 b{{32767, -32768, -100, 5}};
  const I32x4 r = widening_mul(a, b);
  EXPECT_EQ(r[0], 32767 * 32767);
  EXPECT_EQ(r[1], 32768 * 32768);
  EXPECT_EQ(r[2], -10000);
  EXPECT_EQ(r[3], -25);
}

TEST(Vec, PairwiseAddAccumulateLong) {
  I32x4 acc{{100, 200, 300, 400}};
  I16x8 x{{1, 2, 3, 4, 5, 6, 7, 8}};
  const I32x4 r = pairwise_add_accumulate_long(acc, x);
  EXPECT_EQ(r[0], 103);
  EXPECT_EQ(r[1], 207);
  EXPECT_EQ(r[2], 311);
  EXPECT_EQ(r[3], 415);
}

TEST(Vec, SaturatingAddI16) {
  I16x8 a = I16x8::splat(32000);
  I16x8 b = I16x8::splat(32000);
  const I16x8 r = saturating_add(a, b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r[i], 32767);
}

TEST(Vec, RoundingShiftRightMatchesScalar) {
  tincy::Rng rng(9);
  for (int rep = 0; rep < 200; ++rep) {
    I16x8 v{};
    for (auto& lane : v.lane)
      lane = static_cast<int16_t>(rng.uniform_int(-32768, 32767));
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const I16x8 r = rounding_shift_right(v, n);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(r[i], tincy::rounding_right_shift<int16_t>(v[i], n));
  }
}

TEST(Vec, SaturatingNarrowI32ToI16) {
  I32x4 lo{{100000, -100000, 5, -5}};
  I32x4 hi{{32768, -32769, 32767, -32768}};
  const I16x8 r = saturating_narrow(lo, hi);
  EXPECT_EQ(r[0], 32767);
  EXPECT_EQ(r[1], -32768);
  EXPECT_EQ(r[2], 5);
  EXPECT_EQ(r[3], -5);
  EXPECT_EQ(r[4], 32767);
  EXPECT_EQ(r[5], -32768);
  EXPECT_EQ(r[6], 32767);
  EXPECT_EQ(r[7], -32768);
}

TEST(Vec, SplitHalves) {
  I16x8 v{{0, 1, 2, 3, 4, 5, 6, 7}};
  const auto [lo, hi] = split(v);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(lo[i], i);
    EXPECT_EQ(hi[i], i + 4);
  }
}

TEST(Vec, WidenU8Halves) {
  U8x16 v{};
  for (int i = 0; i < 16; ++i) v.lane[static_cast<size_t>(i)] = static_cast<uint8_t>(240 + i);
  const I16x8 lo = widen_low(v), hi = widen_high(v);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(lo[i], 240 + i);       // zero-extended, not sign-extended
    EXPECT_EQ(hi[i], 240 + 8 + i);
  }
}

TEST(Vec, HorizontalSum) {
  F32x4 f{{1.5f, 2.5f, 3.0f, 4.0f}};
  EXPECT_FLOAT_EQ(horizontal_sum(f), 11.0f);
  I32x4 i{{1, -2, 3, -4}};
  EXPECT_EQ(horizontal_sum(i), -2);
}

}  // namespace
}  // namespace tincy::simd
