#include <gtest/gtest.h>

#include "core/fixed_point.hpp"
#include "core/rng.hpp"
#include "simd/vec.hpp"

namespace tincy::simd {
namespace {

TEST(Vec, LoadStoreSplat) {
  const float data[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const F32x4 v = F32x4::load(data);
  float out[4] = {};
  v.store(out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], data[i]);
  const I16x8 s = I16x8::splat(-7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(s[i], -7);
}

TEST(Vec, ElementwiseArithmetic) {
  F32x4 a{{1, 2, 3, 4}}, b{{10, 20, 30, 40}};
  const F32x4 sum = add(a, b);
  const F32x4 diff = sub(b, a);
  const F32x4 prod = mul(a, b);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sum[i], a[i] + b[i]);
    EXPECT_EQ(diff[i], b[i] - a[i]);
    EXPECT_EQ(prod[i], a[i] * b[i]);
  }
}

TEST(Vec, MultiplyAccumulate) {
  const F32x4 acc{{1, 1, 1, 1}}, a{{2, 3, 4, 5}}, b{{10, 10, 10, 10}};
  const F32x4 r = mla(acc, a, b);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], 1.0f + a[i] * 10.0f);
}

TEST(Vec, WideningMulS8NoOverflow) {
  // VMULL.S8: extreme ±127/−128 products must be exact in 16 bits.
  I8x8 a{}, b{};
  a.lane = {127, -128, 127, -128, 1, -1, 0, 50};
  b.lane = {127, -128, -128, 127, -1, -1, 99, 50};
  const I16x8 r = widening_mul(a, b);
  EXPECT_EQ(r[0], 16129);
  EXPECT_EQ(r[1], 16384);
  EXPECT_EQ(r[2], -16256);
  EXPECT_EQ(r[3], -16256);
  EXPECT_EQ(r[4], -1);
  EXPECT_EQ(r[5], 1);
  EXPECT_EQ(r[6], 0);
  EXPECT_EQ(r[7], 2500);
}

TEST(Vec, WideningMulS16) {
  I16x4 a{{32767, -32768, 100, -5}};
  I16x4 b{{32767, -32768, -100, 5}};
  const I32x4 r = widening_mul(a, b);
  EXPECT_EQ(r[0], 32767 * 32767);
  EXPECT_EQ(r[1], 32768 * 32768);
  EXPECT_EQ(r[2], -10000);
  EXPECT_EQ(r[3], -25);
}

TEST(Vec, PairwiseAddAccumulateLong) {
  I32x4 acc{{100, 200, 300, 400}};
  I16x8 x{{1, 2, 3, 4, 5, 6, 7, 8}};
  const I32x4 r = pairwise_add_accumulate_long(acc, x);
  EXPECT_EQ(r[0], 103);
  EXPECT_EQ(r[1], 207);
  EXPECT_EQ(r[2], 311);
  EXPECT_EQ(r[3], 415);
}

TEST(Vec, SaturatingAddI16) {
  I16x8 a = I16x8::splat(32000);
  I16x8 b = I16x8::splat(32000);
  const I16x8 r = saturating_add(a, b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r[i], 32767);
}

TEST(Vec, RoundingShiftRightMatchesScalar) {
  tincy::Rng rng(9);
  for (int rep = 0; rep < 200; ++rep) {
    I16x8 v{};
    for (auto& lane : v.lane)
      lane = static_cast<int16_t>(rng.uniform_int(-32768, 32767));
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const I16x8 r = rounding_shift_right(v, n);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(r[i], tincy::rounding_right_shift<int16_t>(v[i], n));
  }
}

// --- VQRSHRN rounding-narrow edge cases --------------------------------
// These are the lane ops the packed GEMM micro-kernels stand on; any
// rounding/saturation drift must fail here before it reaches the GEMM
// conformance suite.

TEST(Vec, RoundingNarrowingShiftRightTies) {
  // Round-half-up toward +inf, NEON VRSHR semantics: +1.5 -> 2, -1.5 -> -1.
  I32x4 lo{{24, -24, 8, -8}};
  I32x4 hi{{40, -40, 0, 17}};
  const I16x8 r = rounding_narrowing_shift_right(lo, hi, 4);
  EXPECT_EQ(r[0], 2);    // 24/16 = 1.5, tie rounds up
  EXPECT_EQ(r[1], -1);   // -1.5 rounds toward +inf
  EXPECT_EQ(r[2], 1);    // 0.5 -> 1
  EXPECT_EQ(r[3], 0);    // -0.5 -> 0
  EXPECT_EQ(r[4], 3);    // 2.5 -> 3
  EXPECT_EQ(r[5], -2);   // -2.5 -> -2
  EXPECT_EQ(r[6], 0);
  EXPECT_EQ(r[7], 1);    // 17/16 -> 1.0625 rounds to 1
}

TEST(Vec, RoundingNarrowingShiftRightSaturates) {
  // The rounded shift happens in wide precision: INT32_MAX + half-ulp
  // must not wrap before the narrow saturates it.
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  I32x4 lo{{kMax, kMin, 32767 << 4, -(32768 << 4)}};
  I32x4 hi{{(32767 << 4) + (1 << 3), 524288, -524289, 0}};
  const I16x8 r = rounding_narrowing_shift_right(lo, hi, 4);
  EXPECT_EQ(r[0], 32767);   // huge positive saturates high
  EXPECT_EQ(r[1], -32768);  // huge negative saturates low
  EXPECT_EQ(r[2], 32767);   // exactly representable after shift
  EXPECT_EQ(r[3], -32768);
  EXPECT_EQ(r[4], 32767);   // rounds to 32768, then saturates
  EXPECT_EQ(r[5], 32767);   // 524288 >> 4 = 32768 saturates
  EXPECT_EQ(r[6], -32768);  // rounds to -32768.0625 -> -32768 exactly
  EXPECT_EQ(r[7], 0);
}

TEST(Vec, RoundingNarrowingShiftRightNegativeShiftGuard) {
  // NEON immediates are 1..lane-bits; n <= 0 must degrade to a plain
  // saturating narrow, not shift by a negative/huge amount (UB).
  I32x4 lo{{100000, -100000, 42, -7}};
  I32x4 hi{{32768, -32769, 0, 1}};
  for (int n : {0, -1, -16}) {
    const I16x8 r = rounding_narrowing_shift_right(lo, hi, n);
    EXPECT_EQ(r[0], 32767) << n;
    EXPECT_EQ(r[1], -32768) << n;
    EXPECT_EQ(r[2], 42) << n;
    EXPECT_EQ(r[3], -7) << n;
    EXPECT_EQ(r[4], 32767) << n;
    EXPECT_EQ(r[5], -32768) << n;
  }
}

TEST(Vec, RoundingNarrowingShiftRightI16ToI8) {
  I16x8 lo{{127 << 3, -(128 << 3), 1020, -1021, 4, -4, 32767, -32768}};
  I16x8 hi{{0, 12, -12, 3000, -3000, 1, -1, 500}};
  const I8x16 r = rounding_narrowing_shift_right(lo, hi, 3);
  EXPECT_EQ(r[0], 127);    // exactly max
  EXPECT_EQ(r[1], -128);   // exactly min
  EXPECT_EQ(r[2], 127);    // 127.5 rounds to 128, saturates
  EXPECT_EQ(r[3], -128);   // -127.625 -> -128 after floor+round? exact check
  EXPECT_EQ(r[4], 1);      // 0.5 -> 1
  EXPECT_EQ(r[5], 0);      // -0.5 -> 0
  EXPECT_EQ(r[6], 127);    // saturates
  EXPECT_EQ(r[7], -128);   // saturates
  EXPECT_EQ(r[8], 0);
  EXPECT_EQ(r[9], 2);      // 1.5 -> 2
  EXPECT_EQ(r[10], -1);    // -1.5 -> -1
  EXPECT_EQ(r[11], 127);
  EXPECT_EQ(r[12], -128);
  EXPECT_EQ(r[13], 0);     // 0.125 -> 0
  EXPECT_EQ(r[14], 0);     // -0.125 -> 0
  EXPECT_EQ(r[15], 63);    // 62.5 -> 63
}

TEST(Vec, RoundingNarrowingShiftRightMatchesScalarComposition) {
  tincy::Rng rng(11);
  for (int rep = 0; rep < 500; ++rep) {
    I32x4 lo{}, hi{};
    for (auto& lane : lo.lane)
      lane = static_cast<int32_t>(rng.uniform_int(
          std::numeric_limits<int32_t>::min(),
          std::numeric_limits<int32_t>::max()));
    for (auto& lane : hi.lane)
      lane = static_cast<int32_t>(rng.uniform_int(-1 << 20, 1 << 20));
    const int n = static_cast<int>(rng.uniform_int(0, 16));
    const I16x8 r = rounding_narrowing_shift_right(lo, hi, n);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(r[i], tincy::saturate_cast<int16_t>(
                          tincy::rounding_right_shift<int32_t>(lo[i], n)));
      EXPECT_EQ(r[i + 4], tincy::saturate_cast<int16_t>(
                              tincy::rounding_right_shift<int32_t>(hi[i], n)));
    }
  }
}

TEST(Vec, RoundingShiftRightWidePromotionAtLaneMax) {
  // (32767 + 8) overflows int16 if computed narrowly; the helper promotes
  // to a wide type, so the rounded shift of the lane max is exact.
  I16x8 v = I16x8::splat(32767);
  const I16x8 r = rounding_shift_right(v, 4);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r[i], 2048);
  I16x8 m = I16x8::splat(-32768);
  const I16x8 rm = rounding_shift_right(m, 4);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rm[i], -2048);
}

TEST(Vec, WideningMlaSaturationBoundary) {
  // The i32 micro-kernel's inner op: acc_u32 += u16(s * b). The extreme
  // 255*255 product must stay exact through the u16 intermediate.
  U32x16 acc{};
  U8x16 b = U8x16::splat(255);
  acc = widening_mla(acc, b, 255);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(acc.lane[i], 65025u);
  acc = widening_mla(acc, b, 1);   // + 255
  for (int i = 0; i < 16; ++i) EXPECT_EQ(acc.lane[i], 65280u);
  const U32x16 sq = widening_mul_u16_to_u32(b, b);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sq.lane[i], 65025u);
}

TEST(Vec, SaturatingNarrowI32ToI16) {
  I32x4 lo{{100000, -100000, 5, -5}};
  I32x4 hi{{32768, -32769, 32767, -32768}};
  const I16x8 r = saturating_narrow(lo, hi);
  EXPECT_EQ(r[0], 32767);
  EXPECT_EQ(r[1], -32768);
  EXPECT_EQ(r[2], 5);
  EXPECT_EQ(r[3], -5);
  EXPECT_EQ(r[4], 32767);
  EXPECT_EQ(r[5], -32768);
  EXPECT_EQ(r[6], 32767);
  EXPECT_EQ(r[7], -32768);
}

TEST(Vec, SplitHalves) {
  I16x8 v{{0, 1, 2, 3, 4, 5, 6, 7}};
  const auto [lo, hi] = split(v);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(lo[i], i);
    EXPECT_EQ(hi[i], i + 4);
  }
}

TEST(Vec, WidenU8Halves) {
  U8x16 v{};
  for (int i = 0; i < 16; ++i) v.lane[static_cast<size_t>(i)] = static_cast<uint8_t>(240 + i);
  const I16x8 lo = widen_low(v), hi = widen_high(v);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(lo[i], 240 + i);       // zero-extended, not sign-extended
    EXPECT_EQ(hi[i], 240 + 8 + i);
  }
}

TEST(Vec, HorizontalSum) {
  F32x4 f{{1.5f, 2.5f, 3.0f, 4.0f}};
  EXPECT_FLOAT_EQ(horizontal_sum(f), 11.0f);
  I32x4 i{{1, -2, 3, -4}};
  EXPECT_EQ(horizontal_sum(i), -2);
}

}  // namespace
}  // namespace tincy::simd
