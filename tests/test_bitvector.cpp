#include <gtest/gtest.h>

#include "core/bitvector.hpp"
#include "core/rng.hpp"

namespace tincy {
namespace {

BitVector random_bits(Rng& rng, int64_t n, double p = 0.5) {
  BitVector v(n);
  for (int64_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(p));
  return v;
}

TEST(BitVector, SetGet) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130);
  for (int64_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3);
}

TEST(BitVector, BoundsChecked) {
  BitVector v(10);
  EXPECT_THROW(v.get(10), Error);
  EXPECT_THROW(v.set(-1, true), Error);
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(10), b(11);
  EXPECT_THROW(popcount_and(a, b), Error);
  EXPECT_THROW(xnor_popcount(a, b), Error);
}

class BitVectorProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(BitVectorProperty, PopcountsMatchNaive) {
  const int64_t n = GetParam();
  Rng rng(100 + static_cast<uint64_t>(n));
  for (int rep = 0; rep < 10; ++rep) {
    const BitVector a = random_bits(rng, n);
    const BitVector b = random_bits(rng, n);
    int64_t and_cnt = 0, andnot_cnt = 0, xnor_cnt = 0, sdot = 0;
    for (int64_t i = 0; i < n; ++i) {
      and_cnt += a.get(i) && b.get(i);
      andnot_cnt += !a.get(i) && b.get(i);
      xnor_cnt += a.get(i) == b.get(i);
      sdot += b.get(i) ? (a.get(i) ? 1 : -1) : 0;
    }
    EXPECT_EQ(popcount_and(a, b), and_cnt);
    EXPECT_EQ(popcount_andnot(a, b), andnot_cnt);
    EXPECT_EQ(xnor_popcount(a, b), xnor_cnt);
    EXPECT_EQ(signed_binary_dot(a, b), sdot);
  }
}

// Sizes crossing word boundaries, incl. exactly 64 and 128.
INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorProperty,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 129,
                                           1000));

TEST(BitVector, XnorIdentity) {
  Rng rng(5);
  const BitVector a = random_bits(rng, 100);
  // XNOR with itself counts every bit.
  EXPECT_EQ(xnor_popcount(a, a), 100);
}

TEST(BitVector, SignedDotBipolarIdentity) {
  // For W1A1 arithmetic: Σ w·a over bipolar values = 2·xnor_popcount − n.
  Rng rng(6);
  const int64_t n = 200;
  const BitVector w = random_bits(rng, n);
  const BitVector a = random_bits(rng, n);
  int64_t bipolar = 0;
  for (int64_t i = 0; i < n; ++i)
    bipolar += (w.get(i) ? 1 : -1) * (a.get(i) ? 1 : -1);
  EXPECT_EQ(bipolar, 2 * xnor_popcount(w, a) - n);
}

TEST(BitVector, EmptyVector) {
  const BitVector a(0), b(0);
  EXPECT_EQ(xnor_popcount(a, b), 0);
  EXPECT_EQ(popcount_and(a, b), 0);
  EXPECT_EQ(a.popcount(), 0);
}

}  // namespace
}  // namespace tincy
