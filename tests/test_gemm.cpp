#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "gemm/first_layer.hpp"
#include "gemm/gemm_lowp.hpp"
#include "gemm/gemm_ref.hpp"
#include "gemm/gemm_simd.hpp"
#include "quant/affine.hpp"

namespace tincy::gemm {
namespace {

Tensor random_tensor(Rng& rng, Shape shape, float lo = -1.0f, float hi = 1.0f) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
  return t;
}

using Dims = std::tuple<int64_t, int64_t, int64_t>;

class GemmProperty : public ::testing::TestWithParam<Dims> {};

TEST_P(GemmProperty, LanesMatchesReference) {
  const auto [M, N, K] = GetParam();
  Rng rng(31);
  const Tensor a = random_tensor(rng, Shape{M, K});
  const Tensor b = random_tensor(rng, Shape{K, N});
  const Tensor expected = gemm_ref(a, b);
  Tensor got(Shape{M, N});
  gemm_f32_lanes(M, N, K, a.data(), b.data(), got.data());
  for (int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(got[i], expected[i], 1e-4f) << i;
}

TEST_P(GemmProperty, BlockedMatchesReference) {
  const auto [M, N, K] = GetParam();
  Rng rng(33);
  const Tensor a = random_tensor(rng, Shape{M, K});
  const Tensor b = random_tensor(rng, Shape{K, N});
  const Tensor expected = gemm_ref(a, b);
  Tensor got(Shape{M, N});
  gemm_f32_blocked(M, N, K, a.data(), b.data(), got.data());
  for (int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(got[i], expected[i], 1e-4f) << i;
}

TEST(GemmBlocked, CrossesTileBoundaries) {
  // Dimensions straddling the 64/256 tile sizes exercise partial tiles.
  Rng rng(34);
  const int64_t M = 3, N = 300, K = 130;
  const Tensor a = random_tensor(rng, Shape{M, K});
  const Tensor b = random_tensor(rng, Shape{K, N});
  const Tensor expected = gemm_ref(a, b);
  Tensor got(Shape{M, N});
  gemm_f32_blocked(M, N, K, a.data(), b.data(), got.data());
  for (int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(got[i], expected[i], 1e-3f) << i;
}

TEST_P(GemmProperty, LowpLanesBitIdenticalToScalar) {
  const auto [M, N, K] = GetParam();
  Rng rng(37);
  std::vector<uint8_t> a(static_cast<size_t>(M * K)), b(static_cast<size_t>(K * N));
  for (auto& v : a) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
  for (auto& v : b) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
  const int32_t za = 12, zb = 200;
  std::vector<int32_t> ref(static_cast<size_t>(M * N)), got(static_cast<size_t>(M * N));
  gemm_lowp_i32(M, N, K, a.data(), za, b.data(), zb, ref.data());
  gemm_lowp_i32_lanes(M, N, K, a.data(), za, b.data(), zb, got.data());
  EXPECT_EQ(ref, got);
}

INSTANTIATE_TEST_SUITE_P(Dims, GemmProperty,
                         ::testing::Values(Dims{1, 1, 1}, Dims{2, 8, 3},
                                           Dims{4, 7, 5}, Dims{16, 27, 27},
                                           Dims{3, 33, 10}, Dims{8, 64, 16},
                                           Dims{5, 12, 100}));

TEST(GemmRef, BetaSemantics) {
  Rng rng(41);
  const Tensor a = random_tensor(rng, Shape{3, 4});
  const Tensor b = random_tensor(rng, Shape{4, 5});
  Tensor c0(Shape{3, 5}, 10.0f), c1(Shape{3, 5}, 10.0f);
  gemm_ref(3, 5, 4, a.data(), b.data(), c0.data(), /*beta=*/0.0f);
  gemm_ref(3, 5, 4, a.data(), b.data(), c1.data(), /*beta=*/1.0f);
  for (int64_t i = 0; i < c0.numel(); ++i)
    EXPECT_NEAR(c1[i], c0[i] + 10.0f, 1e-5f);
}

TEST(GemmRef, ShapeMismatchThrows) {
  Tensor a(Shape{2, 3}), b(Shape{4, 5});
  EXPECT_THROW(gemm_ref(a, b), Error);
}

TEST(GemmLowp, ApproximatesFloatWithinQuantError) {
  Rng rng(43);
  const int64_t M = 6, N = 20, K = 30;
  const Tensor af = random_tensor(rng, Shape{M, K}, -2.0f, 2.0f);
  const Tensor bf = random_tensor(rng, Shape{K, N}, -1.0f, 3.0f);
  const auto pa = quant::choose_affine_params(-2.0f, 2.0f);
  const auto pb = quant::choose_affine_params(-1.0f, 3.0f);
  const TensorU8 aq = quant::quantize(af, pa);
  const TensorU8 bq = quant::quantize(bf, pb);
  std::vector<int32_t> acc(static_cast<size_t>(M * N));
  gemm_lowp_i32(M, N, K, aq.data(), pa.zero_point, bq.data(), pb.zero_point,
                acc.data());
  const Tensor expected = gemm_ref(af, bf);
  // Error bound: K terms, each within half a step on both operands.
  const float bound = static_cast<float>(K) *
                      (pa.scale * pb.scale / 4 + pa.scale * 3.0f / 2 +
                       pb.scale * 2.0f / 2);
  for (int64_t i = 0; i < M * N; ++i)
    EXPECT_NEAR(pa.scale * pb.scale * static_cast<float>(acc[static_cast<size_t>(i)]),
                expected[i], bound);
}

TEST(GemmLowp, U8OutputPipeline) {
  Rng rng(47);
  const int64_t M = 4, N = 9, K = 12;
  std::vector<uint8_t> a(static_cast<size_t>(M * K)), b(static_cast<size_t>(K * N));
  for (auto& v : a) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
  for (auto& v : b) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
  const auto out_params = quant::choose_affine_params(-8.0f, 8.0f);
  const auto rq = quant::make_requantizer(0.02f, 0.03f, out_params);
  std::vector<uint8_t> c(static_cast<size_t>(M * N));
  gemm_lowp_u8(M, N, K, a.data(), 128, b.data(), 128, rq, c.data());
  std::vector<int32_t> acc(static_cast<size_t>(M * N));
  gemm_lowp_i32(M, N, K, a.data(), 128, b.data(), 128, acc.data());
  for (int64_t i = 0; i < M * N; ++i)
    EXPECT_EQ(c[static_cast<size_t>(i)], rq.apply(acc[static_cast<size_t>(i)]));
}

class ConvKernelProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
  // (channels, image size, stride)
};

TEST_P(ConvKernelProperty, FusedMatchesUnfused) {
  const auto [C, S, stride] = GetParam();
  const ConvGeometry g{C, S, S, 3, stride, 1};
  Rng rng(53);
  const Tensor img = random_tensor(rng, Shape{C, S, S});
  const int64_t out_channels = 10;
  const Tensor w = random_tensor(rng, Shape{out_channels, g.patch_size()});
  const Tensor bias = random_tensor(rng, Shape{out_channels});

  Tensor expected(Shape{out_channels, g.num_patches()});
  conv_via_im2col_f32(img.data(), g, w.data(), out_channels, bias.data(),
                      expected.data());
  Tensor got(expected.shape());
  fused_conv_f32(img.data(), g, w.data(), out_channels, bias.data(),
                 got.data());
  for (int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

TEST_P(ConvKernelProperty, FusedLowpMatchesUnfusedLowp) {
  const auto [C, S, stride] = GetParam();
  const ConvGeometry g{C, S, S, 3, stride, 1};
  Rng rng(59);
  const Tensor img = random_tensor(rng, Shape{C, S, S}, 0.0f, 1.0f);
  const int64_t out_channels = 6;
  const Tensor wf = random_tensor(rng, Shape{out_channels, g.patch_size()});
  const auto wp = quant::choose_affine_params(-1.0f, 1.0f);
  const TensorU8 wq = quant::quantize(wf, wp);
  const auto ip = quant::choose_affine_params(0.0f, 1.0f);

  Tensor a(Shape{out_channels, g.num_patches()});
  Tensor b(a.shape());
  conv_lowp_f32out(img.data(), g, ip, wq.data(), wp, out_channels, nullptr,
                   a.data());
  fused_conv_lowp_f32out(img.data(), g, ip, wq.data(), wp, out_channels,
                         nullptr, b.data());
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvKernelProperty,
                         ::testing::Values(std::tuple{3, 8, 1},
                                           std::tuple{3, 9, 2},
                                           std::tuple{1, 12, 1},
                                           std::tuple{5, 7, 1},
                                           std::tuple{2, 16, 2}));

// ---- Specialized 16×27 first-layer kernels ----

class FirstLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(61);
    img_ = random_tensor(*rng_, Shape{3, 17, 17}, 0.0f, 1.0f);
    weights_ = random_tensor(*rng_, Shape{16, 27}, -0.5f, 0.5f);
    bias_ = random_tensor(*rng_, Shape{16}, -0.1f, 0.1f);
  }

  ConvGeometry geometry(int64_t stride) const { return {3, 17, 17, 3, stride, 1}; }

  std::unique_ptr<Rng> rng_;
  Tensor img_, weights_, bias_;
};

TEST_F(FirstLayerTest, GeometryGuard) {
  EXPECT_TRUE(first_layer_geometry_ok(geometry(1)));
  const ConvGeometry wrong{4, 17, 17, 3, 1, 1};
  EXPECT_FALSE(first_layer_geometry_ok(wrong));
}

TEST_F(FirstLayerTest, F32MatchesGenericConv) {
  for (const int64_t stride : {1, 2}) {
    const ConvGeometry g = geometry(stride);
    Tensor expected(Shape{16, g.num_patches()});
    conv_via_im2col_f32(img_.data(), g, weights_.data(), 16, bias_.data(),
                        expected.data());
    Tensor got(expected.shape());
    first_layer_f32(img_.data(), g, weights_.data(), bias_.data(), got.data());
    for (int64_t i = 0; i < expected.numel(); ++i)
      EXPECT_NEAR(got[i], expected[i], 1e-4f) << "stride=" << stride;
  }
}

TEST_F(FirstLayerTest, Acc32CloseToFloat) {
  const ConvGeometry g = geometry(2);
  Tensor expected(Shape{16, g.num_patches()});
  conv_via_im2col_f32(img_.data(), g, weights_.data(), 16, bias_.data(),
                      expected.data());

  const auto ip = quant::choose_affine_params(0.0f, 1.0f);
  const SymmetricWeights sw = quantize_symmetric(weights_);
  Tensor got(expected.shape());
  first_layer_lowp_acc32(img_.data(), g, ip, sw, bias_.data(), got.data());
  // Quantization error bound: 27 taps, each operand within half a step.
  const float bound = 27.0f * (ip.scale * 0.5f + sw.scale * 0.5f) + 0.01f;
  for (int64_t i = 0; i < expected.numel(); ++i)
    EXPECT_NEAR(got[i], expected[i], bound);
}

TEST_F(FirstLayerTest, Acc16CloseToAcc32) {
  // The rshift-4 path loses up to 16 accumulator units per tap (27 taps)
  // plus saturation in pathological cases; on realistic data it tracks
  // the 32-bit path within the documented small loss.
  const ConvGeometry g = geometry(2);
  const auto ip = quant::choose_affine_params(0.0f, 1.0f);
  const SymmetricWeights sw = quantize_symmetric(weights_);
  Tensor a32(Shape{16, g.num_patches()}), a16(a32.shape());
  first_layer_lowp_acc32(img_.data(), g, ip, sw, bias_.data(), a32.data());
  first_layer_lowp_acc16(img_.data(), g, ip, sw, bias_.data(), a16.data());
  // Rounding bound: 27 taps × 8 units (half of 2^4) × scale, plus slack.
  const float bound = 27.0f * 8.0f * ip.scale * sw.scale * 16.0f + 0.05f;
  for (int64_t i = 0; i < a32.numel(); ++i)
    EXPECT_NEAR(a16[i], a32[i], bound) << i;
}

TEST(Acc16Step, RoundsThenSaturates) {
  EXPECT_EQ(acc16_step(0, 15), 1);        // 15 >> 4 rounds to 1
  EXPECT_EQ(acc16_step(0, 7), 0);
  EXPECT_EQ(acc16_step(0, -25), -2);
  EXPECT_EQ(acc16_step(32760, 32767), 32767);  // saturating accumulation
  EXPECT_EQ(acc16_step(-32760, -32767), -32768);
}

TEST(QuantizeSymmetric, MaxAbsMapsTo127) {
  Tensor w(Shape{2, 3});
  w.at2(0, 0) = 0.5f;
  w.at2(0, 1) = -1.0f;  // max |w|
  w.at2(0, 2) = 0.25f;
  w.at2(1, 0) = 0.0f;
  w.at2(1, 1) = 0.99f;
  w.at2(1, 2) = -0.25f;
  const SymmetricWeights sw = quantize_symmetric(w);
  EXPECT_FLOAT_EQ(sw.scale, 1.0f / 127.0f);
  EXPECT_EQ(sw.codes[1], -127);
  EXPECT_EQ(sw.codes[3], 0);
}

}  // namespace
}  // namespace tincy::gemm
