// Tests of the packed/tiled/threaded low-precision GEMM engine
// (gemm_packed.hpp): bit-exact parity with the scalar oracles across
// awkward shapes, the pack layout contract, accumulator auto-selection,
// the incremental im2col strip, the zero-allocation steady state of the
// hot paths, and thread-pool correctness under concurrent load (the
// latter is the TINCY_SANITIZE=thread target).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "gemm/gemm_lowp.hpp"
#include "gemm/gemm_packed.hpp"
#include "gemm/im2col.hpp"
#include "gemm/scratch.hpp"
#include "quant/affine.hpp"
#include "telemetry/metrics.hpp"

// --- Global operator new instrumentation (zero-allocation smoke test) ---
// Counts every heap acquisition in the process so the steady-state claim
// "warm GEMM hot paths never allocate" is checked against reality, not
// against the arena's own bookkeeping.
//
// GCC pairs inlined allocations with the *implicit* operator new
// declaration and flags the malloc/free replacement as mismatched; the
// replacement below is self-consistent, so silence the false positive.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<int64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tincy::gemm {
namespace {

std::vector<uint8_t> random_codes(Rng& rng, int64_t n) {
  std::vector<uint8_t> v(n);
  for (auto& x : v) x = static_cast<uint8_t>(rng.uniform_int(0, 255));
  return v;
}

// --- Parity vs the scalar oracles across awkward shapes ---------------

using Dims = std::tuple<int64_t, int64_t, int64_t>;

class PackedGemmParity : public ::testing::TestWithParam<Dims> {};

TEST_P(PackedGemmParity, I32BitExact) {
  const auto [M, N, K] = GetParam();
  Rng rng(91);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const int32_t za = 7, zb = 131;
  std::vector<int32_t> ref(M * N), got(M * N, -1);
  gemm_lowp_i32(M, N, K, a.data(), za, b.data(), zb, ref.data());
  gemm_lowp_packed(M, N, K, a.data(), za, b.data(), zb, got.data(), {});
  EXPECT_EQ(ref, got);
}

TEST_P(PackedGemmParity, I32CachedPackBitExact) {
  const auto [M, N, K] = GetParam();
  Rng rng(92);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const int32_t za = 200, zb = 3;
  std::vector<int32_t> ref(M * N), got(M * N, -1);
  gemm_lowp_i32(M, N, K, a.data(), za, b.data(), zb, ref.data());
  const PackedLhs lhs = pack_lhs(a.data(), M, K, za);
  gemm_lowp_packed(lhs, b.data(), zb, N, got.data(), {});
  EXPECT_EQ(ref, got);
}

TEST_P(PackedGemmParity, Shift4BitExact) {
  const auto [M, N, K] = GetParam();
  Rng rng(93);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  // Extreme zero points wrap/saturate the 16-bit path; the kernel must
  // still match the scalar oracle bit for bit.
  const int32_t za = 5, zb = 250;
  std::vector<int32_t> ref(M * N), got(M * N, -1);
  gemm_lowp_i32_shift4(M, N, K, a.data(), za, b.data(), zb, ref.data());
  GemmOptions opts;
  opts.acc = Accumulator::kI16Shift4;
  gemm_lowp_packed(M, N, K, a.data(), za, b.data(), zb, got.data(), opts);
  EXPECT_EQ(ref, got);
}

TEST_P(PackedGemmParity, ForcedShardingBitExact) {
  const auto [M, N, K] = GetParam();
  Rng rng(94);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const int32_t za = 128, zb = 128;
  std::vector<int32_t> ref(M * N), got(M * N, -1);
  gemm_lowp_i32(M, N, K, a.data(), za, b.data(), zb, ref.data());
  core::ThreadPool pool(4);
  GemmOptions opts;
  opts.pool = &pool;
  opts.min_ops_per_shard = 1;  // shard even tiny problems
  opts.min_ops_to_thread = 1;
  gemm_lowp_packed(M, N, K, a.data(), za, b.data(), zb, got.data(), opts);
  EXPECT_EQ(ref, got);
}

TEST(ThreadingHeuristic, SkinnyShapesDeclineThreads) {
  // The layer0 shape (M=16, K=27) runs in well under a millisecond single
  // threaded; fanning it out loses more to worker wake-up than the
  // parallel section saves (the 2.97x < 3x gate miss). The whole-call
  // floor must keep such calls on one thread even with a big pool.
  const int64_t M = 16, N = 1000, K = 27;
  Rng rng(95);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const int32_t za = 7, zb = 131;
  std::vector<int32_t> ref(M * N), got(M * N);
  gemm_lowp_i32(M, N, K, a.data(), za, b.data(), zb, ref.data());
  core::ThreadPool pool(4);
  GemmOptions opts;
  opts.pool = &pool;
  ASSERT_LT(2 * M * N * K, opts.min_ops_to_thread);
  gemm_lowp_packed(M, N, K, a.data(), za, b.data(), zb, got.data(), opts);
  EXPECT_EQ(ref, got);
  auto& registry = telemetry::MetricsRegistry::global();
  EXPECT_EQ(registry.snapshot().gauge_value("gemm.threads"), 1.0);

  // A deep-K shape above the floor still fans out on the same pool.
  const int64_t K2 = 1 << 13;
  const auto a2 = random_codes(rng, M * K2);
  const auto b2 = random_codes(rng, K2 * N);
  std::vector<int32_t> got2(M * N);
  gemm_lowp_packed(M, N, K2, a2.data(), za, b2.data(), zb, got2.data(), opts);
  EXPECT_GT(registry.snapshot().gauge_value("gemm.threads"), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardShapes, PackedGemmParity,
    ::testing::Values(Dims{4, 16, 8},     // exactly one tile
                      Dims{7, 13, 33},    // nothing divides the tile
                      Dims{1, 50, 9},     // M=1 (single row block)
                      Dims{5, 1, 64},     // N=1 (GEMV fast path)
                      Dims{3, 17, 1},     // K=1
                      Dims{16, 1000, 27},   // layer-0-like, N % 16 != 0
                      Dims{33, 31, 130}));  // partial everything

// --- Accumulator policy ------------------------------------------------

TEST(Acc16Policy, SafePredicate) {
  // Centered codes span +-128 at zero point 128: products max 16384 and
  // small depths keep the shifted sum within int16.
  EXPECT_TRUE(acc16_safe(16, 128, 128));
  // Depth large enough to saturate the shifted sum.
  EXPECT_FALSE(acc16_safe(1024, 128, 128));
  // Asymmetric zero points push single products past int16 (253*131).
  EXPECT_FALSE(acc16_safe(4, 2, 131));
}

TEST(Acc16Policy, AutoSelectsShift4WhenSafe) {
  const int64_t M = 6, N = 33, K = 16;
  Rng rng(95);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const int32_t za = 128, zb = 128;
  ASSERT_TRUE(acc16_safe(K, za, zb));
  std::vector<int32_t> oracle(M * N), got(M * N);
  gemm_lowp_i32_shift4(M, N, K, a.data(), za, b.data(), zb, oracle.data());
  GemmOptions opts;
  opts.acc = Accumulator::kAuto;
  gemm_lowp_packed(M, N, K, a.data(), za, b.data(), zb, got.data(), opts);
  EXPECT_EQ(oracle, got);
}

TEST(Acc16Policy, AutoFallsBackToI32WhenUnsafe) {
  const int64_t M = 6, N = 33, K = 200;
  Rng rng(96);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const int32_t za = 7, zb = 131;
  ASSERT_FALSE(acc16_safe(K, za, zb));
  std::vector<int32_t> oracle(M * N), got(M * N);
  gemm_lowp_i32(M, N, K, a.data(), za, b.data(), zb, oracle.data());
  GemmOptions opts;
  opts.acc = Accumulator::kAuto;
  gemm_lowp_packed(M, N, K, a.data(), za, b.data(), zb, got.data(), opts);
  EXPECT_EQ(oracle, got);
}

// --- Pack layout contract ---------------------------------------------

TEST(PackLhs, PanelLayoutAndRowSums) {
  const int64_t rows = 5, depth = 3;  // 2 panels, 3 padded rows in panel 1
  std::vector<uint8_t> a(rows * depth);
  for (int64_t i = 0; i < rows * depth; ++i)
    a[i] = static_cast<uint8_t>(10 + i);
  const int32_t zero = 9;
  const PackedLhs p = pack_lhs(a.data(), rows, depth, zero);
  ASSERT_EQ(p.rows, rows);
  ASSERT_EQ(p.depth, depth);
  ASSERT_EQ(static_cast<int64_t>(p.data.size()),
            packed_lhs_bytes(rows, depth));
  for (int64_t r = 0; r < rows; ++r) {
    int32_t sum = 0;
    for (int64_t k = 0; k < depth; ++k) {
      sum += a[r * depth + k];
      // data[panel][k*kMr + lane], panel = r / kMr, lane = r % kMr.
      EXPECT_EQ(p.data[(r / kMr) * kMr * depth + k * kMr + r % kMr],
                a[r * depth + k])
          << "r=" << r << " k=" << k;
    }
    EXPECT_EQ(p.row_sums[r], sum) << r;
  }
  // Padded lanes carry the zero point so they contribute exact zeros.
  for (int64_t r = rows; r < 8; ++r)
    for (int64_t k = 0; k < depth; ++k)
      EXPECT_EQ(p.data[(r / kMr) * kMr * depth + k * kMr + r % kMr], zero);
}

TEST(PackRhsPanel, PadsTailLanesWithZeroPoint) {
  const int64_t depth = 5, cols = 21;
  Rng rng(97);
  const auto b = random_codes(rng, depth * cols);
  const int32_t zero = 77;
  std::vector<uint8_t> panel(depth * kNr);
  std::vector<int32_t> col_sums(kNr);
  const int64_t col0 = 16, width = cols - col0;  // 5-wide tail panel
  pack_rhs_panel(b.data(), depth, cols, col0, width, zero, panel.data(),
                 col_sums.data());
  for (int64_t k = 0; k < depth; ++k)
    for (int64_t j = 0; j < kNr; ++j) {
      const uint8_t want =
          j < width ? b[k * cols + col0 + j] : static_cast<uint8_t>(zero);
      EXPECT_EQ(panel[k * kNr + j], want) << "k=" << k << " j=" << j;
    }
  for (int64_t j = 0; j < width; ++j) {
    int32_t sum = 0;
    for (int64_t k = 0; k < depth; ++k) sum += b[k * cols + col0 + j];
    EXPECT_EQ(col_sums[j], sum) << j;
  }
}

// --- Incremental im2col strip vs the dense reference -------------------

class Im2colStrip : public ::testing::TestWithParam<ConvGeometry> {};

TEST_P(Im2colStrip, MatchesDenseIm2col) {
  const ConvGeometry g = GetParam();
  Rng rng(98);
  const auto image =
      random_codes(rng, g.in_channels * g.in_height * g.in_width);
  const uint8_t pad_value = 113;
  std::vector<uint8_t> dense(g.patch_size() * g.num_patches());
  im2col<uint8_t>(image.data(), g, dense.data(), pad_value);
  // Strips at awkward offsets: mid-row starts, row-crossing widths, tails.
  const int64_t n = g.num_patches();
  const int64_t starts[] = {0, 1, n / 3, n - 5 > 0 ? n - 5 : 0};
  const int64_t widths[] = {1, 3, kNr, n};
  std::vector<uint8_t> strip;
  for (int64_t col0 : starts)
    for (int64_t w : widths) {
      const int64_t width = std::min(w, n - col0);
      if (width <= 0) continue;
      strip.assign(g.patch_size() * width, 0);
      im2col_strip_u8(image.data(), g, col0, width, pad_value, strip.data());
      for (int64_t r = 0; r < g.patch_size(); ++r)
        for (int64_t j = 0; j < width; ++j)
          ASSERT_EQ(strip[r * width + j], dense[r * n + col0 + j])
              << "col0=" << col0 << " width=" << width << " r=" << r
              << " j=" << j;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colStrip,
    ::testing::Values(ConvGeometry{3, 8, 9, 3, 1, 1},   // padded stride 1
                      ConvGeometry{2, 7, 9, 3, 2, 1},   // stride 2 + pad
                      ConvGeometry{1, 5, 5, 3, 1, 0},   // no pad
                      ConvGeometry{4, 6, 6, 1, 1, 0},   // 1x1 kernel
                      ConvGeometry{1, 4, 4, 3, 3, 2},   // stride > kernel-1
                      ConvGeometry{2, 3, 3, 3, 1, 1})); // out == in == 3x3

// --- Conv drivers: raw vs cached-pack overloads ------------------------

TEST(ConvLowp, RawAndPackedOverloadsAgree) {
  const ConvGeometry geoms[] = {
      {3, 10, 11, 3, 1, 1}, {2, 9, 7, 3, 2, 1}, {5, 6, 6, 1, 1, 0}};
  for (const ConvGeometry& g : geoms) {
    const int64_t out_channels = 7;
    Rng rng(99);
    std::vector<float> image(g.in_channels * g.in_height * g.in_width);
    for (auto& v : image) v = rng.uniform(-1.0f, 1.0f);
    std::vector<float> bias(out_channels);
    for (auto& v : bias) v = rng.normal();
    const auto in_params = quant::choose_affine_params(-1.0f, 1.0f);
    const auto w_params = quant::choose_affine_params(-2.0f, 2.0f);
    Rng wrng(100);
    const auto wq = random_codes(wrng, out_channels * g.patch_size());

    std::vector<float> raw_out(out_channels * g.num_patches(), -1.0f);
    std::vector<float> packed_out(out_channels * g.num_patches(), -2.0f);
    conv_lowp_f32out(image.data(), g, in_params, wq.data(), w_params,
                     out_channels, bias.data(), raw_out.data());
    const PackedLhs lhs =
        pack_lhs(wq.data(), out_channels, g.patch_size(), w_params.zero_point);
    conv_lowp_f32out(image.data(), g, in_params, lhs, w_params, bias.data(),
                     packed_out.data());
    EXPECT_EQ(raw_out, packed_out);

    // The fused strip path accumulates the same integers in the same
    // order, so it matches the im2col path exactly as well.
    std::vector<float> fused_out(out_channels * g.num_patches(), -3.0f);
    fused_conv_lowp_f32out(image.data(), g, in_params, lhs, w_params,
                           bias.data(), fused_out.data());
    EXPECT_EQ(raw_out, fused_out);
  }
}

// --- Zero-allocation steady state --------------------------------------

TEST(ZeroAllocation, WarmHotPathsDoNotTouchTheHeap) {
  const ConvGeometry g{3, 24, 24, 3, 1, 1};
  const int64_t out_channels = 16;
  Rng rng(101);
  std::vector<float> image(g.in_channels * g.in_height * g.in_width);
  for (auto& v : image) v = rng.uniform(0.0f, 1.0f);
  std::vector<float> bias(out_channels, 0.1f);
  const auto in_params = quant::choose_affine_params(0.0f, 1.0f);
  const auto w_params = quant::choose_affine_params(-2.0f, 2.0f);
  const auto wq = random_codes(rng, out_channels * g.patch_size());
  const PackedLhs lhs =
      pack_lhs(wq.data(), out_channels, g.patch_size(), w_params.zero_point);
  std::vector<float> out(out_channels * g.num_patches());

  const int64_t M = 24, N = 96, K = 64;
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const auto out_params = quant::choose_affine_params(-4.0f, 4.0f);
  const quant::Requantizer rq =
      quant::make_requantizer(in_params.scale, w_params.scale, out_params);
  std::vector<uint8_t> cq(M * N);

  auto run_frame = [&] {
    conv_lowp_f32out(image.data(), g, in_params, wq.data(), w_params,
                     out_channels, bias.data(), out.data());
    conv_lowp_f32out(image.data(), g, in_params, lhs, w_params, bias.data(),
                     out.data());
    fused_conv_lowp_f32out(image.data(), g, in_params, lhs, w_params,
                           bias.data(), out.data());
    gemm_lowp_u8(M, N, K, a.data(), in_params.zero_point, b.data(),
                 w_params.zero_point, rq, cq.data());
  };

  // Warm-up: sizes the thread arenas, spins up the shared pool, resolves
  // the telemetry instruments.
  run_frame();
  run_frame();

  const int64_t arena_before = thread_arena().heap_allocations();
  const int64_t heap_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) run_frame();
  const int64_t heap_after = g_heap_allocs.load(std::memory_order_relaxed);
  const int64_t arena_after = thread_arena().heap_allocations();

  EXPECT_EQ(heap_after - heap_before, 0)
      << "steady-state frames must not allocate";
  EXPECT_EQ(arena_after - arena_before, 0)
      << "arena must not grow after warm-up";
}

// --- Thread pool: correctness and concurrent stress (TSan target) ------

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  core::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  struct Ctx {
    std::vector<std::atomic<int>>* hits;
  } ctx{&hits};
  pool.parallel_for(
      0, 1000, 13,
      [](int64_t lo, int64_t hi, void* c) {
        auto* h = static_cast<Ctx*>(c)->hits;
        for (int64_t i = lo; i < hi; ++i)
          (*h)[i].fetch_add(1, std::memory_order_relaxed);
      },
      &ctx);
  for (int64_t i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, NestedCallsRunInline) {
  core::ThreadPool pool(3);
  struct Outer {
    core::ThreadPool* pool;
    std::atomic<int64_t> sum{0};
  } ctx{&pool};
  pool.parallel_for(
      0, 8, 8,
      [](int64_t lo, int64_t hi, void* c) {
        auto* o = static_cast<Outer*>(c);
        for (int64_t i = lo; i < hi; ++i) {
          // Re-entrant parallel_for from a worker must not deadlock.
          o->pool->parallel_for(
              0, 10, 4,
              [](int64_t l, int64_t h, void* s) {
                static_cast<std::atomic<int64_t>*>(s)->fetch_add(
                    h - l, std::memory_order_relaxed);
              },
              &o->sum);
        }
      },
      &ctx);
  EXPECT_EQ(ctx.sum.load(), 8 * 10);
}

TEST(ThreadPool, ConcurrentGemmCallersStaySane) {
  // Several caller threads drive sharded GEMMs through one pool at once —
  // the shape of pipeline workers sharing the process pool. Run under
  // TINCY_SANITIZE=thread for the data-race audit.
  core::ThreadPool pool(4);
  const int64_t M = 31, N = 130, K = 70;
  Rng rng(102);
  const auto a = random_codes(rng, M * K);
  const auto b = random_codes(rng, K * N);
  const int32_t za = 9, zb = 201;
  std::vector<int32_t> ref(M * N);
  gemm_lowp_i32(M, N, K, a.data(), za, b.data(), zb, ref.data());
  const PackedLhs lhs = pack_lhs(a.data(), M, K, za);

  constexpr int kCallers = 4, kReps = 8;
  std::vector<std::vector<int32_t>> outs(kCallers,
                                         std::vector<int32_t>(M * N));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      GemmOptions opts;
      opts.pool = &pool;
      opts.min_ops_per_shard = 1;
      opts.min_ops_to_thread = 1;
      for (int rep = 0; rep < kReps; ++rep)
        gemm_lowp_packed(lhs, b.data(), zb, N, outs[t].data(), opts);
    });
  }
  for (auto& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(outs[t], ref) << t;
}

}  // namespace
}  // namespace tincy::gemm
