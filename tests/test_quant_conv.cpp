#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"

namespace tincy::nn {
namespace {

/// Builds a random quantized conv layer (binary=1, A3) over the geometry.
std::unique_ptr<ConvLayer> make_quant_conv(Rng& rng, int64_t in_c, int64_t size,
                                           int64_t filters, int64_t stride,
                                           bool batch_norm, float in_scale,
                                           float out_scale) {
  ConvConfig cfg;
  cfg.filters = filters;
  cfg.size = 3;
  cfg.stride = stride;
  cfg.pad = true;
  cfg.activation = Activation::kRelu;
  cfg.batch_normalize = batch_norm;
  cfg.binary_weights = true;
  cfg.act_bits = 3;
  cfg.in_scale = in_scale;
  cfg.out_scale = out_scale;
  cfg.kernel = ConvKernel::kQuantReference;
  auto layer = std::make_unique<ConvLayer>(cfg, Shape{in_c, size, size});
  for (int64_t i = 0; i < layer->weights().numel(); ++i)
    layer->weights()[i] = rng.normal();
  for (int64_t c = 0; c < filters; ++c) {
    layer->biases()[c] = rng.normal(0.0f, 0.5f);
    if (batch_norm) {
      layer->bn_scales()[c] = rng.normal(1.0f, 0.4f);  // can go negative
      layer->bn_mean()[c] = rng.normal(0.0f, 0.5f);
      layer->bn_var()[c] = rng.uniform(0.5f, 1.5f);
    }
  }
  layer->invalidate_cached_quantization();
  return layer;
}

/// Input on the A3 grid of `scale`.
Tensor grid_input(Rng& rng, Shape shape, float scale) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = scale * static_cast<float>(rng.uniform_int(0, 7));
  return t;
}

using Case = std::tuple<int64_t, int64_t, int64_t, int64_t, bool>;
// (in_channels, size, filters, stride, batch_norm)

class QuantConvProperty : public ::testing::TestWithParam<Case> {};

TEST_P(QuantConvProperty, ThresholdPathMatchesFloatEmulation) {
  // The integer threshold path (the fabric's golden model) must agree with
  // the float-domain emulation (±1 weights, BN in float, uniform act
  // quantization) — up to one activation level at exact rounding
  // boundaries, which float/double evaluation may resolve differently.
  const auto [in_c, size, filters, stride, bn] = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(in_c * 31 + filters));
  const float in_scale = 0.25f, out_scale = 0.5f;

  const auto quant =
      make_quant_conv(rng, in_c, size, filters, stride, bn, in_scale, out_scale);

  // Float-domain twin: same parameters, reference float kernel.
  ConvConfig fcfg = quant->config();
  fcfg.kernel = ConvKernel::kReference;
  ConvLayer twin(fcfg, Shape{in_c, size, size});
  twin.weights() = quant->weights();
  twin.biases() = quant->biases();
  if (bn) {
    twin.bn_scales() = quant->bn_scales();
    twin.bn_mean() = quant->bn_mean();
    twin.bn_var() = quant->bn_var();
  }
  twin.invalidate_cached_quantization();

  const Tensor in = grid_input(rng, Shape{in_c, size, size}, in_scale);
  Tensor a(quant->output_shape()), b(twin.output_shape());
  quant->forward(in, a);
  twin.forward(in, b);

  int64_t mismatches = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (diff > 1e-5f) {
      // Any disagreement must be exactly one grid level (boundary case).
      EXPECT_NEAR(diff, out_scale, 1e-4f) << "at " << i;
      ++mismatches;
    }
  }
  EXPECT_LE(mismatches, a.numel() / 50 + 1)
      << "too many boundary disagreements";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, QuantConvProperty,
    ::testing::Values(Case{1, 6, 4, 1, false}, Case{3, 8, 8, 1, true},
                      Case{4, 8, 16, 2, true}, Case{8, 5, 3, 1, true},
                      Case{2, 12, 6, 2, false}, Case{16, 6, 32, 1, true}));

TEST(QuantConv, OutputOnGrid) {
  Rng rng(77);
  const auto layer =
      make_quant_conv(rng, 3, 8, 8, 1, true, 0.25f, 0.5f);
  const Tensor in = grid_input(rng, Shape{3, 8, 8}, 0.25f);
  Tensor out(layer->output_shape());
  layer->forward(in, out);
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float code = out[i] / 0.5f;
    EXPECT_NEAR(code, std::round(code), 1e-5f);
    EXPECT_GE(code, -1e-5f);
    EXPECT_LE(code, 7.0f + 1e-5f);
  }
}

TEST(QuantConv, ThresholdsMonotoneAscending) {
  Rng rng(78);
  const auto layer = make_quant_conv(rng, 3, 6, 16, 1, true, 0.25f, 0.5f);
  for (const auto& ch : layer->quant_thresholds()) {
    for (size_t k = 1; k < ch.set.thresholds.size(); ++k) {
      if (ch.ascending)
        EXPECT_LE(ch.set.thresholds[k - 1], ch.set.thresholds[k]);
      else
        EXPECT_GE(ch.set.thresholds[k - 1], ch.set.thresholds[k]);
    }
  }
}

TEST(QuantConv, NegativeBnSlopeFlipsComparison) {
  // A channel with negative batch-norm gamma must produce a descending
  // threshold channel whose levels still match the float emulation.
  ConvConfig cfg;
  cfg.filters = 1;
  cfg.size = 3;
  cfg.pad = true;
  cfg.activation = Activation::kRelu;
  cfg.batch_normalize = true;
  cfg.binary_weights = true;
  cfg.act_bits = 3;
  cfg.in_scale = 0.5f;
  cfg.out_scale = 0.5f;
  cfg.kernel = ConvKernel::kQuantReference;
  ConvLayer layer(cfg, Shape{1, 4, 4});
  layer.weights().fill(1.0f);
  layer.biases()[0] = 1.0f;
  layer.bn_scales()[0] = -0.8f;  // negative slope
  layer.bn_mean()[0] = 0.0f;
  layer.bn_var()[0] = 1.0f;
  layer.invalidate_cached_quantization();

  const auto& th = layer.quant_thresholds();
  ASSERT_EQ(th.size(), 1u);
  EXPECT_FALSE(th[0].ascending);
  // Large accumulators now mean *small* outputs.
  EXPECT_GE(th[0].apply(-100), th[0].apply(100));
}

TEST(QuantConv, ThresholdsRequireQuantizedLayer) {
  ConvConfig cfg;
  cfg.filters = 2;
  ConvLayer layer(cfg, Shape{1, 4, 4});
  EXPECT_THROW(layer.quant_thresholds(), Error);
}

TEST(QuantConv, MaxPoolCommutesWithGrid) {
  // max over grid values stays on the grid: the reason the fabric can pool
  // codes directly.
  Rng rng(79);
  Tensor t(Shape{1, 4, 4});
  for (int64_t i = 0; i < 16; ++i)
    t[i] = 0.5f * static_cast<float>(rng.uniform_int(0, 7));
  MaxPoolLayer pool({2, 2}, t.shape());
  Tensor out(pool.output_shape());
  pool.forward(t, out);
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float code = out[i] / 0.5f;
    EXPECT_NEAR(code, std::round(code), 1e-6f);
  }
}

}  // namespace
}  // namespace tincy::nn
