#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "nn/conv_layer.hpp"
#include "nn/network.hpp"
#include "pipeline/pipeline.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace tincy::telemetry {
namespace {

// --- Concurrency: updates from N threads land exactly ---

TEST(Telemetry, ConcurrentCounterUpdatesLandExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.events");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kIters);
}

TEST(Telemetry, ConcurrentHistogramUpdatesLandExactly) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test.latency_ms");
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kIters; ++i)
        hist.record(1.0 + static_cast<double>(t));  // values 1..8 ms
    });
  for (auto& t : threads) t.join();

  const HistogramStats s = hist.stats();
  EXPECT_EQ(s.count, int64_t{kThreads} * kIters);
  // Σ over threads t of kIters·(1+t) = kIters·(kThreads + kThreads·(kThreads-1)/2)
  const double expected_sum =
      kIters * (kThreads + kThreads * (kThreads - 1) / 2.0);
  EXPECT_NEAR(s.sum, expected_sum, 1e-6);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST(Telemetry, ConcurrentGaugeAddIsLossless) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("test.accum");
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kIters; ++i) gauge.add(0.5);
    });
  for (auto& t : threads) t.join();
  EXPECT_NEAR(gauge.value(), 0.5 * kThreads * kIters, 1e-6);
}

// --- Histogram semantics ---

TEST(Telemetry, HistogramQuantilesBracketedAndOrdered) {
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) hist.record(static_cast<double>(i) * 0.1);
  const HistogramStats s = hist.stats();
  EXPECT_EQ(s.count, 1000);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.max);
  // Log-bucketed estimate: p50 of U(0.1, 100) ≈ 50 within bucket error.
  EXPECT_NEAR(s.p50, 50.0, 50.0 * 0.10);
  EXPECT_NEAR(s.p95, 95.0, 95.0 * 0.10);
  EXPECT_DOUBLE_EQ(s.last, 100.0);
}

TEST(Telemetry, HistogramResetClearsEverything) {
  Histogram hist;
  hist.record(3.0);
  hist.reset();
  const HistogramStats s = hist.stats();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.last, 0.0);
}

TEST(Telemetry, ScopedTimerRecordsOneSpan) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("span.ms");
  {
    ScopedTimer span(hist);
  }
  EXPECT_EQ(hist.count(), 1);
  {
    ScopedTimer span(registry, "span.ms");
    EXPECT_GE(span.stop(), 0.0);
  }  // destructor after stop() must not double-record
  EXPECT_EQ(hist.count(), 2);
}

TEST(Telemetry, RegistrySnapshotFiltersByPrefix) {
  MetricsRegistry registry;
  registry.counter("a.x").add(1);
  registry.counter("b.y").add(2);
  registry.histogram("a.h").record(1.0);
  const Snapshot all = registry.snapshot();
  EXPECT_EQ(all.counters.size(), 2u);
  const Snapshot only_a = registry.snapshot("a.");
  EXPECT_EQ(only_a.counters.size(), 1u);
  EXPECT_EQ(only_a.histograms.size(), 1u);
  EXPECT_EQ(only_a.counter_value("a.x"), 1);
  EXPECT_EQ(only_a.counter_value("b.y"), 0);  // filtered out
}

// --- JSON round trip ---

TEST(Telemetry, JsonExportRoundTrips) {
  MetricsRegistry registry;
  registry.counter("pipeline.frames").add(42);
  registry.gauge("pipeline.fps").set(16.25);
  registry.gauge("weird \"name\"\t").set(-1.5e-3);
  Histogram& h = registry.histogram("net.layer.0.convolutional.ms");
  Rng rng(11);
  for (int i = 0; i < 257; ++i) h.record(0.05 + 10.0 * rng.uniform());

  const Snapshot before = registry.snapshot();
  const std::string json = to_json(before);
  const Snapshot after = parse_snapshot(json);

  ASSERT_EQ(after.counters.size(), before.counters.size());
  ASSERT_EQ(after.gauges.size(), before.gauges.size());
  ASSERT_EQ(after.histograms.size(), before.histograms.size());
  EXPECT_EQ(after.counter_value("pipeline.frames"), 42);
  EXPECT_DOUBLE_EQ(after.gauge_value("pipeline.fps"), 16.25);
  EXPECT_DOUBLE_EQ(after.gauge_value("weird \"name\"\t"), -1.5e-3);
  const auto* hs = after.find_histogram("net.layer.0.convolutional.ms");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->stats.count, before.histograms[0].stats.count);
  EXPECT_DOUBLE_EQ(hs->stats.sum, before.histograms[0].stats.sum);
  EXPECT_DOUBLE_EQ(hs->stats.min, before.histograms[0].stats.min);
  EXPECT_DOUBLE_EQ(hs->stats.max, before.histograms[0].stats.max);
  EXPECT_DOUBLE_EQ(hs->stats.p50, before.histograms[0].stats.p50);
  EXPECT_DOUBLE_EQ(hs->stats.p95, before.histograms[0].stats.p95);
}

TEST(Telemetry, JsonParserRejectsGarbage) {
  EXPECT_THROW(parse_snapshot("not json"), Error);
  EXPECT_THROW(parse_snapshot("{}"), Error);  // missing schema
  EXPECT_THROW(parse_snapshot("{\"schema\": \"other.v9\"}"), Error);
  const std::string ok =
      "{\"schema\": \"tincy.telemetry.v1\", \"counters\": {}, "
      "\"gauges\": {}, \"histograms\": {}}";
  EXPECT_NO_THROW(parse_snapshot(ok));
}

TEST(Telemetry, SummaryTableMentionsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("c.one").add(7);
  registry.histogram("h.two").record(1.25);
  const std::string table = summary_table(registry.snapshot());
  EXPECT_NE(table.find("c.one"), std::string::npos);
  EXPECT_NE(table.find("h.two"), std::string::npos);
}

// --- Pipeline integration: span counts equal frames processed ---

TEST(Telemetry, PipelineSpanCountsEqualFramesProcessed) {
  constexpr int64_t kFrames = 40;  // ≥ 32 per the acceptance criteria
  MetricsRegistry registry;
  std::atomic<int64_t> next{0};
  pipeline::PipelineOptions options;
  for (int s = 0; s < 4; ++s)
    options.stages.push_back(
        {"stage " + std::to_string(s), [](video::Frame&) {}});
  options.source = [&next] {
    video::Frame f;
    f.sequence = next++;
    return f;
  };
  options.sink = [](const video::Frame&) {};
  options.num_workers = 3;
  options.metrics = &registry;
  pipeline::Pipeline p(std::move(options));
  p.run(kFrames);

  const Snapshot snap = p.snapshot();
  for (int s = 0; s < 4; ++s) {
    const std::string prefix = "pipeline.stage.stage_" + std::to_string(s);
    EXPECT_EQ(snap.counter_value(prefix + ".jobs"), kFrames) << prefix;
    const auto* busy = snap.find_histogram(prefix + ".busy_ms");
    ASSERT_NE(busy, nullptr) << prefix;
    EXPECT_EQ(busy->stats.count, kFrames) << prefix;
    const auto* wait = snap.find_histogram(prefix + ".wait_ms");
    ASSERT_NE(wait, nullptr) << prefix;
    EXPECT_EQ(wait->stats.count, kFrames) << prefix;
  }
  EXPECT_EQ(snap.counter_value("pipeline.frames"), kFrames);
  const auto* latency = snap.find_histogram("pipeline.frame_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->stats.count, kFrames);
  EXPECT_GT(snap.gauge_value("pipeline.fps"), 0.0);

  // The legacy accessors are adapters over the same telemetry.
  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& st : stats) EXPECT_EQ(st.jobs, kFrames);
  EXPECT_NEAR(p.elapsed_seconds() * 1000.0,
              snap.gauge_value("pipeline.elapsed_ms"), 1e-9);
}

TEST(Telemetry, PipelineRunResetsItsOwnMetrics) {
  MetricsRegistry registry;
  registry.counter("unrelated.counter").add(5);
  std::atomic<int64_t> next{0};
  pipeline::PipelineOptions options;
  options.stages.push_back({"only", [](video::Frame&) {}});
  options.source = [&next] {
    video::Frame f;
    f.sequence = next++;
    return f;
  };
  options.sink = [](const video::Frame&) {};
  options.num_workers = 2;
  options.metrics = &registry;
  pipeline::Pipeline p(std::move(options));
  p.run(10);
  p.run(7);  // second run must not accumulate on top of the first
  EXPECT_EQ(p.snapshot().counter_value("pipeline.stage.only.jobs"), 7);
  EXPECT_EQ(p.snapshot().counter_value("pipeline.frames"), 7);
  EXPECT_EQ(p.snapshot().counter_value("unrelated.counter"), 5);
}

// --- Network integration: per-layer spans stay fresh in pipeline mode ---

TEST(Telemetry, NetworkRunLayerIntoRecordsFreshTimings) {
  MetricsRegistry registry;
  nn::Network net(Shape{3, 8, 8}, &registry);
  nn::ConvConfig cfg;
  cfg.filters = 2;
  net.add(std::make_unique<nn::ConvLayer>(cfg, net.input_shape()));

  Rng rng(5);
  Tensor in(net.input_shape());
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = rng.uniform();

  net.forward(in);
  const auto* layer0 =
      net.snapshot().find_histogram("net.layer.0.convolutional.ms");
  ASSERT_NE(layer0, nullptr);
  EXPECT_EQ(layer0->stats.count, 1);

  // Pipeline mode: external per-frame buffer, same telemetry stream —
  // last_layer_ms() must reflect this run, not the stale forward() one.
  Tensor out(net.layer(0).output_shape());
  net.run_layer_into(0, in, out);
  EXPECT_EQ(net.snapshot().find_histogram("net.layer.0.convolutional.ms")->stats.count,
            2);
  EXPECT_EQ(net.last_layer_ms(0),
            net.snapshot().find_histogram("net.layer.0.convolutional.ms")->stats.last);
  EXPECT_EQ(net.snapshot().find_histogram("net.forward.ms")->stats.count, 1);
}

}  // namespace
}  // namespace tincy::telemetry
